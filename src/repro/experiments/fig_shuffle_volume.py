"""Shuffle-volume mechanisms — combiners and M3R partition stability
(DESIGN.md §14).

The paper attacks the shuffle by *relocating* intermediate data
(RAMDisk / SSD / Lustre, §IV–V); this sweep attacks its *volume*, the
other axis the related work optimises:

* **In-node combiner** (arXiv:1511.04861): merge each node's map
  outputs key-by-key before the storing stage.  The reduction factor is
  derived from the intermediate key distribution — expected distinct
  keys among the node's pairs — so skewing the keys (the
  ``datagen.generate_kv_pairs`` Zipf knob) honestly shrinks the curve
  instead of dialling a hand-tuned ratio.
* **M3R partition-stable shuffle** (arXiv:1208.4168): for iterative
  jobs, pin the reducer→node map after the first round so reducer-side
  state stays put and later rounds ship only the iteration delta.

Three panels: a mechanism × {stock, ELB, CAD} × {RAMDisk, SSD, Lustre}
grid (does volume reduction compose with the paper's placement and
scheduling optimisations?), a key-skew sweep (fetch volume must fall
monotonically as the Zipf head sharpens), and a per-iteration kMeans
comparison (partition-stable rounds after the first must move strictly
fewer bytes).
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence

from repro.analysis.stats import median, speedup
from repro.core.engine import EngineOptions, run_job
from repro.experiments.common import (GB, MB, Scale, SMALL,
                                      ExperimentResult)
from repro.experiments.runner import (Cell, SweepRunner, cell_scale,
                                      make_cell)
from repro.workloads import groupby_spec, kmeans_spec

__all__ = ["run", "cells", "run_cell", "assemble",
           "POLICIES", "STORES", "SKEWS", "GRID_SKEW"]

PAPER_INPUT_BYTES = 100 * GB

POLICIES = ("stock", "elb", "cad")
STORES = ("ramdisk", "ssd", "lustre")
#: Key-skew sweep points (Zipf exponent ``1 + skew``); 0 is uniform.
SKEWS = (0.0, 0.6, 1.2, 1.8)
#: The grid panel's fixed skew: uniform keys, where the combiner's
#: reduction is weakest (pure distinct-key dedup, no Zipf head), so the
#: residual volume stays visible against every store and policy.
GRID_SKEW = 0.0

#: kMeans M3R panel: per-iteration assignment shuffle of half the input;
#: once the partition map is pinned only this fraction of it moves.
KMEANS_ITERATIONS = 3
KMEANS_SHUFFLE_RATIO = 0.5
KMEANS_DELTA_RATIO = 0.1


def _shuffle_stats(res) -> Dict[str, float]:
    s = res.shuffle
    return {"job_time": res.job_time,
            "stored_gb": s.post_combine_bytes / GB,
            "fetched_gb": s.fetched_bytes / GB,
            "reduction": s.reduction_factor}


def _run_groupby(policy: str, store: str, skew: float, combiner: bool,
                 scale: Scale, seed: int) -> Dict[str, float]:
    spec = groupby_spec(
        scale.bytes_of(PAPER_INPUT_BYTES), split_bytes=128 * MB,
        shuffle_store=store,
        fetch_mode="lustre-local" if store == "lustre" else "network",
        combiner=combiner, key_skew=skew)
    options = EngineOptions(seed=seed,
                            elb=(policy == "elb"),
                            cad=(policy == "cad"))
    res = run_job(spec, cluster_spec=scale.cluster(), options=options)
    return _shuffle_stats(res)


def _run_kmeans(stable: bool, scale: Scale, seed: int) -> Dict[str, float]:
    spec = kmeans_spec(
        scale.bytes_of(PAPER_INPUT_BYTES), iterations=KMEANS_ITERATIONS,
        shuffle_ratio=KMEANS_SHUFFLE_RATIO, partition_stable=stable,
        delta_ratio=KMEANS_DELTA_RATIO)
    res = run_job(spec, cluster_spec=scale.cluster(),
                  options=EngineOptions(seed=seed))
    stats = _shuffle_stats(res)
    stats["per_iter_fetched_gb"] = [b / GB for b in
                                    res.shuffle.per_iteration_fetched]
    return stats


def cells(scale: Scale = SMALL, seeds: Sequence[int] = (0,)) -> List[Cell]:
    """Grid, skew-sweep and M3R cells (each an independent simulation)."""
    out = []
    for policy in POLICIES:
        for store in STORES:
            for combiner in (False, True):
                out.extend(
                    make_cell("shuffle-volume", "grid", scale, seed,
                              policy=policy, store=store,
                              skew=GRID_SKEW, combiner=combiner)
                    for seed in seeds)
    for skew in SKEWS:
        for combiner in (False, True):
            out.extend(
                make_cell("shuffle-volume", "skew", scale, seed,
                          policy="stock", store="ssd", skew=skew,
                          combiner=combiner)
                for seed in seeds)
    for stable in (False, True):
        out.extend(make_cell("shuffle-volume", "m3r", scale, seed,
                             stable=stable)
                   for seed in seeds)
    return out


def run_cell(cell: Cell) -> Dict[str, float]:
    p = cell.params_dict
    if cell.kind == "m3r":
        return _run_kmeans(p["stable"], cell_scale(cell), cell.seed)
    return _run_groupby(p["policy"], p["store"], p["skew"], p["combiner"],
                        cell_scale(cell), cell.seed)


def assemble(results: Mapping[Cell, Dict[str, float]],
             scale: Scale = SMALL,
             seeds: Sequence[int] = (0,)) -> ExperimentResult:
    result = ExperimentResult(
        "shuffle-volume",
        "Shuffle-volume mechanisms: in-node combiner and M3R "
        "partition-stable rounds vs the stock engine",
        headers=["part", "config", "stock_gb", "mech_gb", "ratio",
                 "stock_s", "mech_s", "speedup"])

    def med(kind: str, key: str, **params) -> float:
        vals = [results[make_cell("shuffle-volume", kind, scale, s,
                                  **params)][key]
                for s in seeds]
        return median(vals)

    for policy in POLICIES:
        for store in STORES:
            off_gb = med("grid", "fetched_gb", policy=policy, store=store,
                         skew=GRID_SKEW, combiner=False)
            on_gb = med("grid", "fetched_gb", policy=policy, store=store,
                        skew=GRID_SKEW, combiner=True)
            off_s = med("grid", "job_time", policy=policy, store=store,
                        skew=GRID_SKEW, combiner=False)
            on_s = med("grid", "job_time", policy=policy, store=store,
                       skew=GRID_SKEW, combiner=True)
            result.add("grid", f"{policy}/{store}", off_gb, on_gb,
                       on_gb / off_gb if off_gb else 0.0,
                       off_s, on_s, speedup(off_s, on_s))

    for skew in SKEWS:
        off_gb = med("skew", "fetched_gb", policy="stock", store="ssd",
                     skew=skew, combiner=False)
        on_gb = med("skew", "fetched_gb", policy="stock", store="ssd",
                    skew=skew, combiner=True)
        off_s = med("skew", "job_time", policy="stock", store="ssd",
                    skew=skew, combiner=False)
        on_s = med("skew", "job_time", policy="stock", store="ssd",
                   skew=skew, combiner=True)
        result.add("skew", f"zipf={skew}", off_gb, on_gb,
                   on_gb / off_gb if off_gb else 0.0,
                   off_s, on_s, speedup(off_s, on_s))

    base_time = med("m3r", "job_time", stable=False)
    m3r_time = med("m3r", "job_time", stable=True)
    for i in range(KMEANS_ITERATIONS):
        def iter_gb(stable: bool) -> float:
            vals = [results[make_cell("shuffle-volume", "m3r", scale, s,
                                      stable=stable)]
                    ["per_iter_fetched_gb"][i]
                    for s in seeds]
            return median(vals)

        off_gb, on_gb = iter_gb(False), iter_gb(True)
        result.add("m3r", f"kmeans iter {i}", off_gb, on_gb,
                   on_gb / off_gb if off_gb else 0.0,
                   base_time, m3r_time, speedup(base_time, m3r_time))

    result.note("skew panel: combiner-on fetched_gb must fall "
                "monotonically with the Zipf skew — the reduction "
                "factor is the expected distinct-key count, not a "
                "hand-set ratio")
    result.note("m3r panel: with the partition map pinned, iterations "
                "after the first ship only the re-assignment delta "
                f"({KMEANS_DELTA_RATIO:.0%} of the round volume); the "
                "non-stable baseline reshuffles in full every round")
    return result


def run(scale: Scale = SMALL, seeds: Sequence[int] = (0,),
        runner: Optional[SweepRunner] = None) -> ExperimentResult:
    runner = runner if runner is not None else SweepRunner()
    results = runner.run_cells(cells(scale=scale, seeds=seeds))
    return assemble(results, scale=scale, seeds=seeds)


def main() -> None:  # pragma: no cover
    print(run().render())


if __name__ == "__main__":  # pragma: no cover
    main()
