"""Fig 7 — GroupBy performance when intermediate data lives on Lustre.

Three configurations for the storing/fetching of intermediate data:

* **HDFS** (really: node-local RAMDisk shuffle dirs) — the data-centric
  baseline, capacity-limited to ~1.2 TB cluster-wide in the paper.
* **Lustre-local** (Fig 6 left) — shuffle files on Lustre, but fetch
  requests are served by the *writer* from its client cache, so no lock
  traffic; data crosses the network as usual.
* **Lustre-shared** (Fig 6 right) — fetchers read Lustre directly; every
  read revokes the writer's lock, forcing a flush to the OSSes first.

Paper findings: HDFS beats Lustre-local by up to 6.5× (gap grows
linearly with data size); Lustre-shared is up to 3.8× worse than
Lustre-local, with the damage concentrated in the shuffling phase
(up to an order of magnitude slower — Fig 7(b)) while storing phases
stay comparable.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence

from repro.cluster.variability import LognormalSpeed
from repro.core.engine import EngineOptions, run_job
from repro.core.metrics import JobResult
from repro.experiments.common import GB, Scale, SMALL, ExperimentResult
from repro.experiments.runner import (Cell, SweepRunner, cell_scale,
                                      make_cell)
from repro.storage.device import DeviceFullError
from repro.workloads import groupby_spec

__all__ = ["run", "cells", "run_cell", "assemble",
           "PAPER_HDFS_SPEEDUP", "PAPER_SHARED_SLOWDOWN"]

PAPER_HDFS_SPEEDUP = 6.5      # HDFS vs Lustre-local, up to
PAPER_SHARED_SLOWDOWN = 3.8   # Lustre-shared vs Lustre-local, up to

#: Paper sweeps intermediate data volume; 100 GB – 1 TB slice here.
PAPER_DATA_SIZES = (100 * GB, 200 * GB, 400 * GB, 600 * GB, 1024 * GB)

CONFIGS = {
    "hdfs": dict(shuffle_store="ramdisk", fetch_mode="network"),
    "lustre-local": dict(shuffle_store="lustre", fetch_mode="lustre-local"),
    "lustre-shared": dict(shuffle_store="lustre", fetch_mode="lustre-shared"),
}


def _run_one(config: str, data_bytes: float, scale: Scale,
             seed: int) -> Optional[JobResult]:
    spec = groupby_spec(data_bytes,
                        n_reducers=scale.n_nodes * 16,
                        **CONFIGS[config])
    try:
        return run_job(spec, cluster_spec=scale.cluster(),
                       options=EngineOptions(seed=seed),
                       speed_model=LognormalSpeed())
    except DeviceFullError:
        # The paper's HDFS/RAMDisk curve also stops (at ~1.2 TB): the
        # intermediate data no longer fits on the RAMDisks.
        return None


def cells(scale: Scale = SMALL, seeds: Sequence[int] = (0,),
          data_sizes: Sequence[float] = PAPER_DATA_SIZES) -> List[Cell]:
    """One cell per (storage configuration, data size, seed) job."""
    return [make_cell("fig07", "job", scale, seed, config=config,
                      paper_gb=paper_bytes / GB)
            for paper_bytes in data_sizes
            for config in CONFIGS
            for seed in seeds]


def run_cell(cell: Cell) -> Dict[str, object]:
    p = cell.params_dict
    scale = cell_scale(cell)
    res = _run_one(p["config"], scale.bytes_of(p["paper_gb"] * GB), scale,
                   cell.seed)
    if res is None:
        return {"ok": False}
    return {"ok": True, "job_time": res.job_time,
            "store_time": res.store_time, "fetch_time": res.fetch_time}


def assemble(results: Mapping[Cell, Dict[str, object]],
             scale: Scale = SMALL, seeds: Sequence[int] = (0,),
             data_sizes: Sequence[float] = PAPER_DATA_SIZES
             ) -> ExperimentResult:
    result = ExperimentResult(
        "fig07", "GroupBy with intermediate data on HDFS vs Lustre",
        headers=["data_GB(paper)", "hdfs_s", "lustre_local_s",
                 "lustre_shared_s", "local/hdfs", "shared/local",
                 "local_store_s", "local_fetch_s", "shared_store_s",
                 "shared_fetch_s"])
    for paper_bytes in data_sizes:
        runs: Dict[str, Optional[Dict[str, object]]] = {}
        for config in CONFIGS:
            outcomes = [results[make_cell(
                "fig07", "job", scale, s, config=config,
                paper_gb=paper_bytes / GB)] for s in seeds]
            ok = [r for r in outcomes if r["ok"]]
            runs[config] = (sorted(ok, key=lambda r: r["job_time"])
                            [len(ok) // 2] if ok else None)
        hdfs, local, shared = (runs["hdfs"], runs["lustre-local"],
                               runs["lustre-shared"])
        result.add(
            paper_bytes / GB,
            hdfs["job_time"] if hdfs else float("nan"),
            local["job_time"] if local else float("nan"),
            shared["job_time"] if shared else float("nan"),
            (local["job_time"] / hdfs["job_time"]) if hdfs and local
            else float("nan"),
            (shared["job_time"] / local["job_time"]) if shared and local
            else float("nan"),
            local["store_time"] if local else float("nan"),
            local["fetch_time"] if local else float("nan"),
            shared["store_time"] if shared else float("nan"),
            shared["fetch_time"] if shared else float("nan"),
        )
    result.note(f"paper: HDFS up to {PAPER_HDFS_SPEEDUP}x over "
                f"Lustre-local; Lustre-shared up to "
                f"{PAPER_SHARED_SLOWDOWN}x worse than Lustre-local")
    result.note(f"scale={scale.name}; data sizes are paper-scale labels, "
                f"run at {scale.data_factor:.2f}x volume")
    return result


def run(scale: Scale = SMALL, seeds: Sequence[int] = (0,),
        data_sizes: Sequence[float] = PAPER_DATA_SIZES,
        runner: Optional[SweepRunner] = None) -> ExperimentResult:
    runner = runner if runner is not None else SweepRunner()
    results = runner.run_cells(cells(scale=scale, seeds=seeds,
                                     data_sizes=data_sizes))
    return assemble(results, scale=scale, seeds=seeds,
                    data_sizes=data_sizes)


def main() -> None:  # pragma: no cover
    print(run().render())


if __name__ == "__main__":  # pragma: no cover
    main()
