"""Table I — Key Spark configuration parameters.

Regenerates the paper's tuning table from the live defaults of
:class:`repro.config.SparkConf` and checks them against the published
values.
"""

from __future__ import annotations

from repro.config import TABLE_I, SparkConf
from repro.experiments.common import ExperimentResult

__all__ = ["run"]


def run() -> ExperimentResult:
    result = ExperimentResult(
        "table1", "Key Spark configuration parameters",
        headers=["parameter", "paper", "ours", "match"])
    ours = SparkConf().table_i()
    for key, paper_value in TABLE_I.items():
        our_value = ours.get(key, "<missing>")
        result.add(key, paper_value, our_value,
                   "yes" if our_value == paper_value else "NO")
    return result


def main() -> None:  # pragma: no cover
    print(run().render())


if __name__ == "__main__":  # pragma: no cover
    main()
