"""Experiment harness: one module per paper table/figure.

Every experiment exposes ``run(scale=..., seeds=...)`` returning a
structured result with the same rows/series the paper reports, plus
``main()`` for the CLI (``python -m repro.experiments <id>``).

Paper-scale runs (100 nodes, up to 1.5 TB) are expensive in a pure-Python
discrete-event simulation, so experiments default to a scaled cluster
that preserves per-node ratios (data per node, Lustre share per node);
see :class:`~repro.experiments.common.Scale`.
"""

from repro.experiments.common import Scale, SMALL, MEDIUM, FULL

__all__ = ["Scale", "SMALL", "MEDIUM", "FULL"]
