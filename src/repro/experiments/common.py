"""Shared experiment plumbing: scaling, repetition, result containers."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.cluster.spec import ClusterSpec, hyperion

GB = 1024.0 ** 3
MB = 1024.0 ** 2
TB = 1024.0 ** 4

__all__ = ["Scale", "SMALL", "MEDIUM", "FULL", "ExperimentResult",
           "GB", "MB", "TB"]


@dataclass(frozen=True)
class Scale:
    """How far to shrink the paper's testbed for one run.

    ``n_nodes`` replaces Hyperion's 100 workers; every *data size* from
    the paper is multiplied by ``n_nodes / 100`` so per-node volumes (and
    hence cache/SSD/Lustre behaviour per node) match the original.
    """

    name: str
    n_nodes: int

    @property
    def data_factor(self) -> float:
        return self.n_nodes / 100.0

    def bytes_of(self, paper_bytes: float) -> float:
        """Scale a paper-quoted data size to this cluster."""
        return paper_bytes * self.data_factor

    def cluster(self) -> ClusterSpec:
        return hyperion(self.n_nodes)


SMALL = Scale("small", n_nodes=8)
MEDIUM = Scale("medium", n_nodes=20)
FULL = Scale("full", n_nodes=100)

#: The paper reports that HDFS over the 32 GB RAMDisks "can only support
#: a maximum of 1.2 TB intermediate data size" (§IV-B); experiments mark
#: RAMDisk-backed data points beyond this as unavailable, exactly as the
#: paper's HDFS curves end there.
HDFS_RAMDISK_MAX_BYTES = 1.2 * TB


@dataclass
class ExperimentResult:
    """Rows of one regenerated table/figure."""

    experiment_id: str
    title: str
    headers: List[str]
    rows: List[List] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)
    extra: Dict[str, object] = field(default_factory=dict)

    def add(self, *row) -> None:
        self.rows.append(list(row))

    def note(self, text: str) -> None:
        self.notes.append(text)

    def column(self, header: str) -> List:
        idx = self.headers.index(header)
        return [r[idx] for r in self.rows]

    def render(self) -> str:
        from repro.analysis.tables import format_table
        out = format_table(self.headers, self.rows,
                           title=f"{self.experiment_id}: {self.title}")
        if self.notes:
            out += "\n" + "\n".join(f"  note: {n}" for n in self.notes)
        return out
