"""CLI: regenerate any paper table/figure.

Usage::

    python -m repro.experiments list
    python -m repro.experiments fig07
    python -m repro.experiments fig13 --scale medium --seeds 0 1 2
    python -m repro.experiments all --jobs 4
    python -m repro.experiments validate      # PASS/FAIL claims report
    python -m repro.experiments validate --jobs 8 --seeds 0 1 2

Sweeps fan out across ``--jobs`` worker processes and consult the
on-disk result cache (``.repro-cache/`` by default) unless ``--no-cache``
is given; results are byte-identical to a serial, uncached run.
"""

from __future__ import annotations

import argparse
import sys

from repro.experiments.common import FULL, MEDIUM, SMALL
from repro.experiments.registry import EXPERIMENTS
from repro.experiments.runner import (DEFAULT_CACHE_DIR, SweepRunner,
                                      run_experiment)

SCALES = {"small": SMALL, "medium": MEDIUM, "full": FULL}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate tables/figures from the IPDPS'14 paper")
    parser.add_argument("experiment",
                        help="experiment id (e.g. fig07), 'all', or 'list'")
    parser.add_argument("--scale", choices=sorted(SCALES), default="small",
                        help="cluster scale (default: small)")
    parser.add_argument("--seeds", type=int, nargs="+", default=[0],
                        help="seeds; the median is reported (paper: 5 runs)")
    parser.add_argument("--jobs", "-j", type=int, default=1,
                        help="worker processes for the sweep (default: 1; "
                             "results are byte-identical at any job count)")
    parser.add_argument("--no-cache", action="store_true",
                        help="neither read nor write the result cache")
    parser.add_argument("--cache-dir", default=None, metavar="DIR",
                        help=f"result cache location (default: "
                             f"$REPRO_CACHE_DIR or {DEFAULT_CACHE_DIR})")
    parser.add_argument("--no-progress", action="store_true",
                        help="suppress per-cell progress on stderr")
    args = parser.parse_args(argv)

    if args.jobs < 1:
        raise SystemExit(f"--jobs must be >= 1, got {args.jobs}")

    if args.experiment == "list":
        for name in sorted(EXPERIMENTS):
            print(name)
        return 0

    runner = SweepRunner(jobs=args.jobs, cache=not args.no_cache,
                         cache_dir=args.cache_dir,
                         progress=not args.no_progress)

    if args.experiment == "validate":
        from repro.experiments.validate import render_report, validate
        report = validate(scale=SCALES[args.scale],
                          seeds=tuple(args.seeds), runner=runner)
        print(render_report(report))
        return 0 if all(r["pass"] for r in report) else 1

    ids = sorted(EXPERIMENTS) if args.experiment == "all" \
        else [args.experiment]
    scale = SCALES[args.scale]
    for exp_id in ids:
        result = run_experiment(exp_id, scale=scale,
                                seeds=tuple(args.seeds), runner=runner)
        print(result.render())
        print()
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
