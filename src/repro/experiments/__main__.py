"""CLI: regenerate any paper table/figure.

Usage::

    python -m repro.experiments list
    python -m repro.experiments fig07
    python -m repro.experiments fig13 --scale medium --seeds 0 1 2
    python -m repro.experiments all
    python -m repro.experiments validate      # PASS/FAIL claims report
"""

from __future__ import annotations

import argparse
import sys

from repro.experiments.common import FULL, MEDIUM, SMALL, Scale
from repro.experiments.registry import EXPERIMENTS, get

SCALES = {"small": SMALL, "medium": MEDIUM, "full": FULL}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate tables/figures from the IPDPS'14 paper")
    parser.add_argument("experiment",
                        help="experiment id (e.g. fig07), 'all', or 'list'")
    parser.add_argument("--scale", choices=sorted(SCALES), default="small",
                        help="cluster scale (default: small)")
    parser.add_argument("--seeds", type=int, nargs="+", default=[0],
                        help="seeds; the median is reported (paper: 5 runs)")
    args = parser.parse_args(argv)

    if args.experiment == "list":
        for name in sorted(EXPERIMENTS):
            print(name)
        return 0

    if args.experiment == "validate":
        from repro.experiments.validate import render_report, validate
        report = validate(scale=SCALES[args.scale],
                          seeds=tuple(args.seeds))
        print(render_report(report))
        return 0 if all(r["pass"] for r in report) else 1

    ids = sorted(EXPERIMENTS) if args.experiment == "all" \
        else [args.experiment]
    scale = SCALES[args.scale]
    for exp_id in ids:
        run = get(exp_id)
        kwargs = {}
        # table1 and the task trace take reduced parameter sets.
        if exp_id == "table1":
            result = run()
        elif exp_id == "fig08d":
            result = run(scale=scale, seed=args.seeds[0])
        else:
            result = run(scale=scale, seeds=tuple(args.seeds))
        print(result.render())
        print()
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
