"""CLI: regenerate any paper table/figure.

Usage::

    python -m repro.experiments list
    python -m repro.experiments fig07
    python -m repro.experiments fig13 --scale medium --seeds 0 1 2
    python -m repro.experiments all --jobs 4
    python -m repro.experiments validate      # PASS/FAIL claims report
    python -m repro.experiments validate --jobs 8 --seeds 0 1 2

Sweeps fan out across ``--jobs`` worker processes and consult the
on-disk result cache (``.repro-cache/`` by default) unless ``--no-cache``
is given; results are byte-identical to a serial, uncached run.
"""

from __future__ import annotations

import argparse
import sys

from repro.experiments.common import FULL, MEDIUM, SMALL
from repro.experiments.registry import EXPERIMENTS
from repro.experiments.runner import (DEFAULT_CACHE_DIR, SweepRunner,
                                      run_experiment)

SCALES = {"small": SMALL, "medium": MEDIUM, "full": FULL}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate tables/figures from the IPDPS'14 paper")
    parser.add_argument("experiment",
                        help="experiment id (e.g. fig07), 'all', or 'list'")
    parser.add_argument("--scale", choices=sorted(SCALES), default="small",
                        help="cluster scale (default: small)")
    parser.add_argument("--seeds", type=int, nargs="+", default=[0],
                        help="seeds; the median is reported (paper: 5 runs)")
    parser.add_argument("--jobs", "-j", type=int, default=1,
                        help="worker processes for the sweep (default: 1; "
                             "results are byte-identical at any job count)")
    parser.add_argument("--no-cache", action="store_true",
                        help="neither read nor write the result cache")
    parser.add_argument("--cache-dir", default=None, metavar="DIR",
                        help=f"result cache location (default: "
                             f"$REPRO_CACHE_DIR or {DEFAULT_CACHE_DIR})")
    parser.add_argument("--no-progress", action="store_true",
                        help="suppress per-cell progress on stderr")
    parser.add_argument("--trace-out", default=None, metavar="FILE",
                        help="write a Chrome trace per engine run "
                             "(forces --jobs 1 and --no-cache; multiple "
                             "runs get -2, -3, ... suffixes)")
    parser.add_argument("--metrics-out", default=None, metavar="FILE",
                        help="write a JSONL run log per engine run "
                             "(forces --jobs 1 and --no-cache)")
    parser.add_argument("--probe-period", type=float, default=0.25,
                        help="telemetry gauge sampling period in sim "
                             "seconds (default: 0.25)")
    args = parser.parse_args(argv)

    if args.jobs < 1:
        raise SystemExit(f"--jobs must be >= 1, got {args.jobs}")

    if args.experiment == "list":
        for name in sorted(EXPERIMENTS):
            print(name)
        return 0

    capturing = bool(args.trace_out or args.metrics_out)
    jobs, cache = args.jobs, not args.no_cache
    if capturing:
        # Capture sessions live in this process, and a cache hit would
        # skip the engine run entirely — nothing to observe either way.
        if jobs != 1:
            print("telemetry capture forces --jobs 1", file=sys.stderr)
            jobs = 1
        if cache:
            print("telemetry capture forces --no-cache", file=sys.stderr)
            cache = False
        if args.probe_period <= 0:
            raise SystemExit(f"--probe-period must be positive, "
                             f"got {args.probe_period}")

    runner = SweepRunner(jobs=jobs, cache=cache,
                         cache_dir=args.cache_dir,
                         progress=not args.no_progress)

    session = None
    if capturing:
        from repro.obs import capture as obs_capture
        session = obs_capture.install(obs_capture.CaptureSession(
            trace_out=args.trace_out, metrics_out=args.metrics_out,
            probe_period=args.probe_period))
    try:
        if args.experiment == "validate":
            from repro.experiments.validate import render_report, validate
            report = validate(scale=SCALES[args.scale],
                              seeds=tuple(args.seeds), runner=runner)
            print(render_report(report))
            return 0 if all(r["pass"] for r in report) else 1

        ids = sorted(EXPERIMENTS) if args.experiment == "all" \
            else [args.experiment]
        scale = SCALES[args.scale]
        for exp_id in ids:
            result = run_experiment(exp_id, scale=scale,
                                    seeds=tuple(args.seeds), runner=runner)
            print(result.render())
            print()
        return 0
    finally:
        if session is not None:
            from repro.obs import capture as obs_capture
            obs_capture.uninstall()
            for trace_path, runlog_path in session.written:
                for path in (trace_path, runlog_path):
                    if path:
                        print(f"wrote {path}", file=sys.stderr)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
