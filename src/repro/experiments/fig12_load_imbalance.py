"""Fig 12 — Unbalanced task assignment → unbalanced intermediate data.

Paper setup: GroupBy with 256 MB splits; 2500 tasks on 50 nodes, 5000 on
100, 7500 on 150.  Node performance varies with background workload skew,
so the greedy scheduler gives fast nodes more tasks; each task deposits a
unit of intermediate data, so data skews identically.  In the 100-node
case the 3 head nodes host ~7 GB each while the 10 tail nodes host
>14 GB — a 2× spread that drags the storing/shuffling phases (Fig 11).
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.analysis.cdf import cdf, percentile_spread
from repro.cluster.variability import LognormalSpeed
from repro.core.engine import EngineOptions, run_job
from repro.experiments.common import (GB, MB, Scale, SMALL,
                                      ExperimentResult)
from repro.experiments.runner import (Cell, SweepRunner, cell_scale,
                                      make_cell)
from repro.workloads import groupby_spec

__all__ = ["run", "cells", "run_cell", "assemble", "PAPER_SPREAD"]

PAPER_SPREAD = 2.0  # tail nodes host ~2x the data of head nodes

#: (tasks, nodes) pairs from the paper, scaled by node count.
PAPER_CASES = ((2500, 50), (5000, 100), (7500, 150))
SPLIT = 256 * MB


def _case_nodes_tasks(paper_tasks: int, paper_nodes: int,
                      scale: Scale) -> Tuple[int, int]:
    n_nodes = max(2, round(paper_nodes * scale.n_nodes / 100))
    n_tasks = round(paper_tasks * n_nodes / paper_nodes)
    return n_nodes, n_tasks


def cells(scale: Scale = SMALL, seeds: Sequence[int] = (0,),
          cases: Sequence[Tuple[int, int]] = PAPER_CASES) -> List[Cell]:
    """One cell per (case, seed) computation-stage run."""
    return [make_cell("fig12", "job", scale, seed,
                      paper_tasks=paper_tasks, paper_nodes=paper_nodes)
            for paper_tasks, paper_nodes in cases
            for seed in seeds]


def run_cell(cell: Cell) -> Dict[str, object]:
    p = cell.params_dict
    scale = cell_scale(cell)
    n_nodes, n_tasks = _case_nodes_tasks(p["paper_tasks"],
                                         p["paper_nodes"], scale)
    # Only the computation stage matters here: the experiment measures
    # how tasks and their intermediate data distribute over nodes.
    spec = groupby_spec(n_tasks * SPLIT, split_bytes=SPLIT,
                        n_reducers=n_nodes * 16).with_(
                            shuffle_store=None)
    res = run_job(spec, cluster_spec=scale.cluster().scaled(n_nodes),
                  options=EngineOptions(seed=cell.seed),
                  speed_model=LognormalSpeed())
    data = np.sort(res.node_intermediate)
    head = float(data[:max(1, n_nodes * 3 // 100 or 1)].mean())
    tail = float(data[-max(1, n_nodes * 10 // 100 or 1):].mean())
    return {"head": head, "tail": tail,
            "data_spread": tail / head if head > 0 else float("inf"),
            "task_spread": percentile_spread(res.node_task_counts,
                                             low=5, high=95),
            "node_intermediate": [float(x) for x in res.node_intermediate]}


def assemble(results: Mapping[Cell, Dict[str, object]],
             scale: Scale = SMALL, seeds: Sequence[int] = (0,),
             cases: Sequence[Tuple[int, int]] = PAPER_CASES
             ) -> ExperimentResult:
    result = ExperimentResult(
        "fig12", "Task and intermediate-data distribution across nodes",
        headers=["case", "nodes", "tasks", "head_GB", "tail_GB",
                 "tail/head", "task_spread"])
    for paper_tasks, paper_nodes in cases:
        n_nodes, n_tasks = _case_nodes_tasks(paper_tasks, paper_nodes,
                                             scale)
        runs = [results[make_cell("fig12", "job", scale, seed,
                                  paper_tasks=paper_tasks,
                                  paper_nodes=paper_nodes)]
                for seed in seeds]
        head_tail = [(r["head"], r["tail"]) for r in runs]
        mid = len(seeds) // 2
        head, tail = sorted(head_tail)[mid]
        result.add(f"{paper_tasks}/{paper_nodes}", n_nodes, n_tasks,
                   head / GB, tail / GB,
                   float(np.median([r["data_spread"] for r in runs])),
                   float(np.median([r["task_spread"] for r in runs])))
        # As in the original serial loop, the CDF comes from the run of
        # the last seed in declaration order.
        result.extra[f"cdf_{paper_tasks}_{paper_nodes}"] = cdf(
            runs[-1]["node_intermediate"])
    result.note(f"paper: ~{PAPER_SPREAD}x workload difference between "
                "head (3 nodes) and tail (10 nodes) of the distribution")
    result.note(f"scale={scale.name}; node counts scaled by "
                f"{scale.n_nodes}/100")
    return result


def run(scale: Scale = SMALL, seeds: Sequence[int] = (0,),
        cases: Sequence[Tuple[int, int]] = PAPER_CASES,
        runner: Optional[SweepRunner] = None) -> ExperimentResult:
    runner = runner if runner is not None else SweepRunner()
    results = runner.run_cells(cells(scale=scale, seeds=seeds,
                                     cases=cases))
    return assemble(results, scale=scale, seeds=seeds, cases=cases)


def main() -> None:  # pragma: no cover
    print(run().render())


if __name__ == "__main__":  # pragma: no cover
    main()
