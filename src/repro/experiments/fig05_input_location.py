"""Fig 5 — Performance of retrieving inputs from HDFS vs Lustre.

Paper setup: Grep and Logistic Regression read their input either from
the data-centric HDFS-over-RAMDisk configuration or from the
compute-centric Lustre file system, with split sizes 32/64/128 MB.

Paper findings:

* Fig 5(a) Grep (scan-bound): the Lustre configuration is up to ~5.7×
  slower than HDFS at 32 MB splits; growing the split to 128 MB recovers
  ~15.9 % on Lustre (less scheduling overhead) but a large gap remains.
* Fig 5(b) LR (compute-bound): storage architecture barely matters; in
  fact Lustre *wins* by ~12.7 % because Spark's delay scheduling on the
  HDFS configuration holds tasks back for locality.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence

from repro.analysis.stats import median
from repro.cluster.variability import LognormalSpeed
from repro.core.engine import EngineOptions, run_job
from repro.experiments.common import (GB, MB, Scale, SMALL,
                                      ExperimentResult)
from repro.experiments.runner import (Cell, SweepRunner, cell_scale,
                                      make_cell)
from repro.workloads import grep_spec, logistic_regression_spec

__all__ = ["run", "cells", "run_cell", "assemble",
           "PAPER_GREP_SLOWDOWN_32MB", "PAPER_LR_LUSTRE_GAIN"]

#: Paper: Lustre up to 5.7x worse than HDFS for Grep at 32 MB splits.
PAPER_GREP_SLOWDOWN_32MB = 5.7
#: Paper: Lustre outperforms HDFS by 12.7% for LR (delay-scheduling tax).
PAPER_LR_LUSTRE_GAIN = 12.7

#: Input volume at paper scale (100 nodes); scaled per run.
PAPER_INPUT_BYTES = 200 * GB
SPLIT_SIZES = (32 * MB, 64 * MB, 128 * MB)


def _job_time(benchmark: str, source: str, split: float, scale: Scale,
              seed: int) -> float:
    if benchmark == "grep":
        spec = grep_spec(input_bytes=scale.bytes_of(PAPER_INPUT_BYTES),
                         split_bytes=split, input_source=source)
    else:
        spec = logistic_regression_spec(
            input_bytes=scale.bytes_of(PAPER_INPUT_BYTES),
            split_bytes=split, input_source=source)
    # Spark's stock configuration uses delay scheduling; on Lustre there
    # is no locality metadata, so every task launches immediately.
    options = EngineOptions(delay_scheduling=(source == "hdfs"), seed=seed)
    res = run_job(spec, cluster_spec=scale.cluster(), options=options,
                  speed_model=LognormalSpeed(sigma=0.14))
    return res.job_time


def cells(scale: Scale = SMALL, seeds: Sequence[int] = (0,),
          splits: Sequence[float] = SPLIT_SIZES) -> List[Cell]:
    """One cell per (benchmark, split, input source, seed) simulation."""
    return [make_cell("fig05", "job", scale, seed, benchmark=benchmark,
                      source=source, split=float(split))
            for benchmark in ("grep", "lr")
            for split in splits
            for source in ("hdfs", "lustre")
            for seed in seeds]


def run_cell(cell: Cell) -> Dict[str, float]:
    p = cell.params_dict
    return {"job_time": _job_time(p["benchmark"], p["source"], p["split"],
                                  cell_scale(cell), cell.seed)}


def assemble(results: Mapping[Cell, Dict[str, float]],
             scale: Scale = SMALL, seeds: Sequence[int] = (0,),
             splits: Sequence[float] = SPLIT_SIZES) -> ExperimentResult:
    result = ExperimentResult(
        "fig05", "Job execution time: input from HDFS vs Lustre",
        headers=["benchmark", "split_MB", "hdfs_s", "lustre_s",
                 "lustre/hdfs"])

    def seconds(benchmark: str, source: str, split: float) -> float:
        return median([results[make_cell(
            "fig05", "job", scale, s, benchmark=benchmark, source=source,
            split=float(split))]["job_time"] for s in seeds])

    for benchmark in ("grep", "lr"):
        for split in splits:
            hdfs = seconds(benchmark, "hdfs", split)
            lustre = seconds(benchmark, "lustre", split)
            result.add(benchmark, split / MB, hdfs, lustre, lustre / hdfs)
    result.note(f"paper: Grep Lustre/HDFS up to {PAPER_GREP_SLOWDOWN_32MB}x "
                f"at 32MB; LR Lustre ~{PAPER_LR_LUSTRE_GAIN}% faster")
    result.note(f"scale={scale.name} ({scale.n_nodes} nodes, "
                f"{scale.bytes_of(PAPER_INPUT_BYTES) / GB:.0f} GB input)")
    return result


def run(scale: Scale = SMALL, seeds: Sequence[int] = (0,),
        splits: Sequence[float] = SPLIT_SIZES,
        runner: Optional[SweepRunner] = None) -> ExperimentResult:
    runner = runner if runner is not None else SweepRunner()
    results = runner.run_cells(cells(scale=scale, seeds=seeds,
                                     splits=splits))
    return assemble(results, scale=scale, seeds=seeds, splits=splits)


def main() -> None:  # pragma: no cover - CLI glue
    print(run().render())


if __name__ == "__main__":  # pragma: no cover
    main()
