"""Fig 8 — Leveraging SSDs for intermediate data.

GroupBy with intermediate data on the node-local SSD (ext4, behind the
OS page cache) versus the RAMDisk, sweeping the paper's 100 GB – 1.5 TB
range.  Paper findings:

* (a) SSD ≈ RAMDisk up to ~600 GB (page-cache absorption); RAMDisk wins
  clearly beyond ~700 GB; the SSD supports larger datasets than the
  RAMDisk can hold at all.
* (b) Dissection on SSD: shuffling (network-bound) dominates ≤ 600 GB;
  storing and shuffling contribute equally at 700–900 GB; both drop
  sharply beyond 900 GB as SSD writes degrade (GC) — and reads become
  SSD-bound.
* (c) The spread between the fastest and slowest ShuffleMapTask grows to
  ~18× at 1.5 TB.
* (d) Task execution time vs launch order shows three eras: fast (write
  buffer + clean blocks), degraded (GC activates), severe (deep queues
  compound the interference).
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence

import numpy as np

from repro.cluster.variability import LognormalSpeed
from repro.core.engine import EngineOptions, run_job
from repro.core.metrics import JobResult
from repro.experiments.common import (GB, HDFS_RAMDISK_MAX_BYTES, TB,
                                      Scale, SMALL, ExperimentResult)
from repro.experiments.runner import (Cell, SweepRunner, cell_scale,
                                      make_cell)
from repro.storage.device import DeviceFullError
from repro.workloads import groupby_spec

__all__ = ["run", "run_task_trace", "cells", "run_cell", "assemble",
           "PAPER_TASK_SPREAD_1_5TB"]

PAPER_TASK_SPREAD_1_5TB = 18.0

PAPER_DATA_SIZES = (100 * GB, 300 * GB, 600 * GB, 800 * GB,
                    1024 * GB, 1.5 * TB)


def _run_one(store: str, data_bytes: float, scale: Scale,
             seed: int, paper_bytes: Optional[float] = None
             ) -> Optional[JobResult]:
    if store == "ramdisk" and paper_bytes is not None and \
            paper_bytes > HDFS_RAMDISK_MAX_BYTES:
        return None  # the paper's RAMDisk curve ends at ~1.2 TB (§IV-B)
    spec = groupby_spec(data_bytes, shuffle_store=store,
                        n_reducers=scale.n_nodes * 16)
    try:
        return run_job(spec, cluster_spec=scale.cluster(),
                       options=EngineOptions(seed=seed),
                       speed_model=LognormalSpeed())
    except DeviceFullError:
        return None  # RAMDisk curve ends where capacity runs out


def cells(scale: Scale = SMALL, seeds: Sequence[int] = (0,),
          data_sizes: Sequence[float] = PAPER_DATA_SIZES) -> List[Cell]:
    """One cell per (store, data size, seed) job."""
    return [make_cell("fig08", "job", scale, seed, store=store,
                      paper_gb=paper_bytes / GB)
            for paper_bytes in data_sizes
            for store in ("ramdisk", "ssd")
            for seed in seeds]


def run_cell(cell: Cell) -> Dict[str, object]:
    p = cell.params_dict
    scale = cell_scale(cell)
    paper_bytes = p["paper_gb"] * GB
    res = _run_one(p["store"], scale.bytes_of(paper_bytes), scale,
                   cell.seed, paper_bytes)
    if res is None:
        return {"ok": False}
    return {"ok": True, "job_time": res.job_time,
            "compute_time": res.compute_time, "store_time": res.store_time,
            "fetch_time": res.fetch_time,
            "task_spread": res.phases["store"].min_max_spread()}


def assemble(results: Mapping[Cell, Dict[str, object]],
             scale: Scale = SMALL, seeds: Sequence[int] = (0,),
             data_sizes: Sequence[float] = PAPER_DATA_SIZES
             ) -> ExperimentResult:
    result = ExperimentResult(
        "fig08", "GroupBy intermediate data on SSD vs RAMDisk",
        headers=["data_GB(paper)", "ramdisk_s", "ssd_s", "ssd/ramdisk",
                 "ssd_compute_s", "ssd_store_s", "ssd_fetch_s",
                 "ssd_task_spread"])
    for paper_bytes in data_sizes:
        outcomes = {
            store: [results[make_cell("fig08", "job", scale, s, store=store,
                                      paper_gb=paper_bytes / GB)]
                    for s in seeds]
            for store in ("ramdisk", "ssd")}
        ram = _median([r if r["ok"] else None for r in outcomes["ramdisk"]])
        ssd = _median([r if r["ok"] else None for r in outcomes["ssd"]])
        result.add(
            paper_bytes / GB,
            ram["job_time"] if ram else float("nan"),
            ssd["job_time"] if ssd else float("nan"),
            (ssd["job_time"] / ram["job_time"]) if ram and ssd
            else float("nan"),
            ssd["compute_time"] if ssd else float("nan"),
            ssd["store_time"] if ssd else float("nan"),
            ssd["fetch_time"] if ssd else float("nan"),
            ssd["task_spread"] if ssd else float("nan"),
        )
    result.note("paper: SSD ~= RAMDisk <= 600 GB (page cache); RAMDisk "
                "wins > 700 GB; storing collapses > 900 GB (SSD GC); "
                f"task spread up to {PAPER_TASK_SPREAD_1_5TB}x at 1.5 TB")
    result.note(f"scale={scale.name}; sizes are paper labels at "
                f"{scale.data_factor:.2f}x volume")
    return result


def run(scale: Scale = SMALL, seeds: Sequence[int] = (0,),
        data_sizes: Sequence[float] = PAPER_DATA_SIZES,
        runner: Optional[SweepRunner] = None) -> ExperimentResult:
    runner = runner if runner is not None else SweepRunner()
    results = runner.run_cells(cells(scale=scale, seeds=seeds,
                                     data_sizes=data_sizes))
    return assemble(results, scale=scale, seeds=seeds,
                    data_sizes=data_sizes)


def run_task_trace(scale: Scale = SMALL, seed: int = 0,
                   paper_bytes: float = 1.5 * TB) -> ExperimentResult:
    """Fig 8(d): ShuffleMapTask execution time by launch order."""
    data = scale.bytes_of(paper_bytes)
    res = _run_one("ssd", data, scale, seed)
    result = ExperimentResult(
        "fig08d", "ShuffleMapTask execution time by launch order (SSD)",
        headers=["launch_index", "duration_s"])
    if res is None:
        result.note("SSD too small at this scale")
        return result
    ordered = res.phases["store"].by_launch_order()
    for i, rec in enumerate(ordered):
        result.add(i, rec.duration)
    # Era summary: paper shows fast -> degraded -> severe.
    d = np.array([r.duration for r in ordered])
    third = max(1, len(d) // 3)
    result.extra["era_means"] = [float(d[:third].mean()),
                                 float(d[third:2 * third].mean()),
                                 float(d[2 * third:].mean())]
    result.note(f"era means (fast/degraded/severe): "
                f"{result.extra['era_means']}")
    return result


def _median(outcomes: List[Optional[Dict[str, object]]]
            ) -> Optional[Dict[str, object]]:
    ok = [r for r in outcomes if r is not None]
    if not ok:
        return None
    return sorted(ok, key=lambda r: r["job_time"])[len(ok) // 2]


def main() -> None:  # pragma: no cover
    print(run().render())
    print()
    print(run_task_trace().render())


if __name__ == "__main__":  # pragma: no cover
    main()
