"""Fig 10 — Task execution time with local vs remote input data.

The paper compares the average (plus min/max) task execution time of the
three benchmarks when input is read locally versus from a remote server,
showing that enforcing 100 % locality buys almost nothing: Spark
pipelines computation with input, and on an InfiniBand fabric a remote
DataNode read keeps up with a local one.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence

import numpy as np

from repro.cluster.variability import LognormalSpeed
from repro.core.engine import EngineOptions, run_job
from repro.experiments.common import (GB, MB, Scale, SMALL,
                                      ExperimentResult)
from repro.experiments.runner import (Cell, SweepRunner, cell_scale,
                                      make_cell)
from repro.workloads import grep_spec, groupby_spec, logistic_regression_spec

__all__ = ["run", "cells", "run_cell", "assemble"]

PAPER_INPUT_BYTES = 100 * GB


def _specs(scale: Scale):
    data = scale.bytes_of(PAPER_INPUT_BYTES)
    # Random placement for every HDFS benchmark here: the experiment
    # needs a population of both local and remote launches to compare.
    return {
        "GroupBy": groupby_spec(data, split_bytes=128 * MB,
                                n_reducers=scale.n_nodes * 16),
        "Grep": grep_spec(data, split_bytes=128 * MB,
                          input_source="hdfs").with_(
                              hdfs_placement="random"),
        "LR": logistic_regression_spec(data, split_bytes=128 * MB,
                                       input_source="hdfs",
                                       iterations=1).with_(
                                           hdfs_placement="random"),
    }


def cells(scale: Scale = SMALL, seeds: Sequence[int] = (0,)) -> List[Cell]:
    """One cell per (benchmark, seed) job; each yields the per-task
    local/remote duration populations."""
    return [make_cell("fig10", "job", scale, seed, benchmark=name)
            for name in _specs(scale)
            for seed in seeds]


def run_cell(cell: Cell) -> Dict[str, List[float]]:
    scale = cell_scale(cell)
    spec = _specs(scale)[cell.params_dict["benchmark"]]
    res = run_job(spec, cluster_spec=scale.cluster(),
                  options=EngineOptions(seed=cell.seed),
                  speed_model=LognormalSpeed(sigma=0.14))
    local: List[float] = []
    remote: List[float] = []
    for t in res.phases["compute"].tasks:
        if t.local is True:
            local.append(t.duration)
        elif t.local is False:
            remote.append(t.duration)
    return {"local": local, "remote": remote}


def assemble(results: Mapping[Cell, Dict[str, List[float]]],
             scale: Scale = SMALL, seeds: Sequence[int] = (0,)
             ) -> ExperimentResult:
    result = ExperimentResult(
        "fig10", "Task execution time: local vs remote input data",
        headers=["benchmark", "local_mean_s", "local_min_s", "local_max_s",
                 "remote_mean_s", "remote_min_s", "remote_max_s",
                 "remote/local"])
    for name in _specs(scale):
        local: List[float] = []
        remote: List[float] = []
        for seed in seeds:
            durations = results[make_cell("fig10", "job", scale, seed,
                                          benchmark=name)]
            local.extend(durations["local"])
            remote.extend(durations["remote"])
        lm = _stats(local)
        rm = _stats(remote)
        ratio = (rm[0] / lm[0]) if local and remote else float("nan")
        result.add(name, *lm, *rm, ratio)
    result.note("paper: enforcing 100% locality provides little gain for "
                "all three benchmarks (pipelined input)")
    result.note("GroupBy generates input in memory, so it has no "
                "local/remote distinction (n/a rows)")
    return result


def run(scale: Scale = SMALL, seeds: Sequence[int] = (0,),
        runner: Optional[SweepRunner] = None) -> ExperimentResult:
    runner = runner if runner is not None else SweepRunner()
    results = runner.run_cells(cells(scale=scale, seeds=seeds))
    return assemble(results, scale=scale, seeds=seeds)


def _stats(durations: List[float]):
    if not durations:
        return (float("nan"), float("nan"), float("nan"))
    arr = np.array(durations)
    return (float(arr.mean()), float(arr.min()), float(arr.max()))


def main() -> None:  # pragma: no cover
    print(run().render())


if __name__ == "__main__":  # pragma: no cover
    main()
