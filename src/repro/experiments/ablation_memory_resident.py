"""Ablation — what "memory-resident" buys (paper §II-C).

The paper's premise is that Spark's memory-resident RDDs make iterative
analytics fast: intermediate results stay in distributed memory across
iterations instead of being re-read from the filesystem.  This ablation
runs Logistic Regression with RDD caching on and off, against both
storage architectures, quantifying the feature the whole paper builds
on — and showing it is *more* valuable on the compute-centric (Lustre)
configuration, where re-reading input costs shared-filesystem bandwidth
every iteration.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence

from repro.analysis.stats import median, speedup
from repro.cluster.variability import LognormalSpeed
from repro.core.engine import EngineOptions, run_job
from repro.experiments.common import (GB, MB, Scale, SMALL,
                                      ExperimentResult)
from repro.experiments.runner import (Cell, SweepRunner, cell_scale,
                                      make_cell)
from repro.workloads import logistic_regression_spec

__all__ = ["run", "cells", "run_cell", "assemble"]

PAPER_INPUT_BYTES = 200 * GB


def _job_time(source: str, cached: bool, iterations: int, scale: Scale,
              seed: int) -> float:
    # A lighter model than the paper's LR (150 MB/s/core instead of
    # 20 MB/s/core): with heavy per-byte compute the input re-read hides
    # behind the math and caching is free either way; a data-hungry model
    # is where memory residency actually pays.
    spec = logistic_regression_spec(
        input_bytes=scale.bytes_of(PAPER_INPUT_BYTES),
        split_bytes=64 * MB, input_source=source,
        compute_rate=150 * MB,
        iterations=iterations).with_(cache_input=cached)
    res = run_job(spec, cluster_spec=scale.cluster(),
                  options=EngineOptions(seed=seed),
                  speed_model=LognormalSpeed(sigma=0.14))
    return res.job_time


def cells(scale: Scale = SMALL, seeds: Sequence[int] = (0,),
          iterations: int = 3) -> List[Cell]:
    """One cell per (input source, caching on/off, seed) LR job."""
    return [make_cell("ablation-mem", "job", scale, seed, source=source,
                      cached=cached, iterations=int(iterations))
            for source in ("hdfs", "lustre")
            for cached in (True, False)
            for seed in seeds]


def run_cell(cell: Cell) -> Dict[str, float]:
    p = cell.params_dict
    return {"job_time": _job_time(p["source"], p["cached"],
                                  p["iterations"], cell_scale(cell),
                                  cell.seed)}


def assemble(results: Mapping[Cell, Dict[str, float]],
             scale: Scale = SMALL, seeds: Sequence[int] = (0,),
             iterations: int = 3) -> ExperimentResult:
    result = ExperimentResult(
        "ablation-mem",
        "Memory-resident RDDs on vs off (LR, 3 iterations)",
        headers=["input_source", "cached_s", "uncached_s",
                 "caching_speedup"])

    def seconds(source: str, is_cached: bool) -> float:
        return median([results[make_cell(
            "ablation-mem", "job", scale, s, source=source,
            cached=is_cached, iterations=int(iterations))]["job_time"]
            for s in seeds])

    for source in ("hdfs", "lustre"):
        cached = seconds(source, True)
        uncached = seconds(source, False)
        result.add(source, cached, uncached, speedup(uncached, cached))
    result.note("memory residency should pay more on Lustre, where every "
                "re-read competes for the shared OSS bandwidth")
    return result


def run(scale: Scale = SMALL, seeds: Sequence[int] = (0,),
        iterations: int = 3,
        runner: Optional[SweepRunner] = None) -> ExperimentResult:
    runner = runner if runner is not None else SweepRunner()
    results = runner.run_cells(cells(scale=scale, seeds=seeds,
                                     iterations=iterations))
    return assemble(results, scale=scale, seeds=seeds,
                    iterations=iterations)


def main() -> None:  # pragma: no cover
    print(run().render())


if __name__ == "__main__":  # pragma: no cover
    main()
