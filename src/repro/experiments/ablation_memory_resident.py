"""Ablation — what "memory-resident" buys (paper §II-C).

The paper's premise is that Spark's memory-resident RDDs make iterative
analytics fast: intermediate results stay in distributed memory across
iterations instead of being re-read from the filesystem.  This ablation
runs Logistic Regression with RDD caching on and off, against both
storage architectures, quantifying the feature the whole paper builds
on — and showing it is *more* valuable on the compute-centric (Lustre)
configuration, where re-reading input costs shared-filesystem bandwidth
every iteration.
"""

from __future__ import annotations

from typing import Sequence

from repro.analysis.stats import speedup
from repro.cluster.variability import LognormalSpeed
from repro.core.engine import EngineOptions, run_job
from repro.experiments.common import (GB, MB, Scale, SMALL,
                                      ExperimentResult, median_result)
from repro.workloads import logistic_regression_spec

__all__ = ["run"]

PAPER_INPUT_BYTES = 200 * GB


def _job_time(source: str, cached: bool, iterations: int, scale: Scale,
              seed: int) -> float:
    # A lighter model than the paper's LR (150 MB/s/core instead of
    # 20 MB/s/core): with heavy per-byte compute the input re-read hides
    # behind the math and caching is free either way; a data-hungry model
    # is where memory residency actually pays.
    spec = logistic_regression_spec(
        input_bytes=scale.bytes_of(PAPER_INPUT_BYTES),
        split_bytes=64 * MB, input_source=source,
        compute_rate=150 * MB,
        iterations=iterations).with_(cache_input=cached)
    res = run_job(spec, cluster_spec=scale.cluster(),
                  options=EngineOptions(seed=seed),
                  speed_model=LognormalSpeed(sigma=0.14))
    return res.job_time


def run(scale: Scale = SMALL, seeds: Sequence[int] = (0,),
        iterations: int = 3) -> ExperimentResult:
    result = ExperimentResult(
        "ablation-mem",
        "Memory-resident RDDs on vs off (LR, 3 iterations)",
        headers=["input_source", "cached_s", "uncached_s",
                 "caching_speedup"])
    for source in ("hdfs", "lustre"):
        cached = median_result(
            lambda s: _job_time(source, True, iterations, scale, s), seeds)
        uncached = median_result(
            lambda s: _job_time(source, False, iterations, scale, s), seeds)
        result.add(source, cached, uncached, speedup(uncached, cached))
    result.note("memory residency should pay more on Lustre, where every "
                "re-read competes for the shared OSS bandwidth")
    return result


def main() -> None:  # pragma: no cover
    print(run().render())


if __name__ == "__main__":  # pragma: no cover
    main()
