"""Ablation — spill vs. wait under executor-heap scarcity (DESIGN.md §13).

The paper keeps intermediate data memory-resident by construction; this
ablation asks what happens when executor heaps cannot hold a full
complement of tasks.  A *rigid* admission policy (Spark's default) holds
every task to its ideal heap and lets offers go unfilled — concurrency
drops and waves stretch.  A *memory-elastic* policy launches some tasks
shrunk, paying a spill-I/O penalty (overflow written to and re-read from
the node-local spill store) to keep every core busy.  Sweeping the heap
fraction against {stock, ELB, CAD} shows where each side of that trade
wins — and whether CAD's device-congestion signal, built for shuffle
stores, also reacts to spill traffic hitting the same SSD.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence

from repro.analysis.stats import median, speedup
from repro.cluster.variability import LognormalSpeed
from repro.core.engine import EngineOptions, run_job
from repro.core.memory import MemoryConfig
from repro.experiments.common import (GB, MB, Scale, SMALL,
                                      ExperimentResult)
from repro.experiments.runner import (Cell, SweepRunner, cell_scale,
                                      make_cell)
from repro.workloads import groupby_spec

__all__ = ["run", "cells", "run_cell", "assemble",
           "FRACTIONS", "MECHANISMS"]

PAPER_INPUT_BYTES = 400 * GB

#: Heap fractions swept: 1.0 is the no-scarcity control (rigid and
#: elastic must coincide there), the rest are increasing pressure.
#: Deliberately not multiples of the per-core heap share: scarcity that
#: divides evenly (or whose remainder falls below min_task_frac) leaves
#: no room for the elastic policy to shrink a task into, collapsing
#: both modes onto the same schedule.  With 16 cores these leave
#: remainders of 0.4–0.8 of an ideal heap per node.
FRACTIONS = (1.0, 0.65, 0.4, 0.3)
MECHANISMS = ("stock", "elb", "cad")

#: Spill curve for the sweep: a shrunk task spills half its working set
#: at full shrink, sublinearly for mild shrink (gamma > 1 — hash
#: aggregation degrades gracefully until the table really can't fit).
SPILL_RATIO = 0.5
SPILL_GAMMA = 1.5

#: Compute-heavy GroupBy variant: at the stock 350 MB/s/core generate
#: rate the compute stage is a blink and queueing never accumulates;
#: 150 MB/s/core makes waves long enough that lost concurrency hurts
#: more than spill I/O — the regime the elastic policy is for.
_GENERATE_RATE = 150 * MB


def _run(mechanism: str, frac: float, elastic: bool, scale: Scale,
         seed: int) -> Dict[str, float]:
    spec = groupby_spec(
        scale.bytes_of(PAPER_INPUT_BYTES), split_bytes=128 * MB,
        shuffle_store="ssd", generate_rate=_GENERATE_RATE)
    mem = MemoryConfig(mem_frac=frac, elastic=elastic,
                       spill_store="ssd", spill_ratio=SPILL_RATIO,
                       spill_gamma=SPILL_GAMMA)
    options = EngineOptions(seed=seed,
                            elb=(mechanism == "elb"),
                            cad=(mechanism == "cad"),
                            memory=mem)
    res = run_job(spec, cluster_spec=scale.cluster(), options=options,
                  speed_model=LognormalSpeed(sigma=0.14))
    m = res.memory
    return {"job_time": res.job_time,
            "spill_gb": m.spill_bytes_written / GB,
            "tasks_shrunk": float(m.tasks_shrunk),
            "declines": float(m.grants_declined)}


def cells(scale: Scale = SMALL, seeds: Sequence[int] = (0,)) -> List[Cell]:
    """One cell per (mechanism, heap fraction, admission mode, seed)."""
    return [make_cell("ablation-spill", "job", scale, seed,
                      mechanism=mechanism, frac=frac, elastic=elastic)
            for mechanism in MECHANISMS
            for frac in FRACTIONS
            for elastic in (False, True)
            for seed in seeds]


def run_cell(cell: Cell) -> Dict[str, float]:
    p = cell.params_dict
    return _run(p["mechanism"], p["frac"], p["elastic"],
                cell_scale(cell), cell.seed)


def assemble(results: Mapping[Cell, Dict[str, float]],
             scale: Scale = SMALL,
             seeds: Sequence[int] = (0,)) -> ExperimentResult:
    result = ExperimentResult(
        "ablation-spill",
        "Rigid vs memory-elastic admission under heap scarcity (GroupBy "
        "on SSD)",
        headers=["mechanism", "mem_frac", "rigid_s", "elastic_s",
                 "elastic_gain", "spill_gb", "tasks_shrunk"])

    def cell_for(mechanism: str, frac: float, elastic: bool, seed: int):
        return make_cell("ablation-spill", "job", scale, seed,
                         mechanism=mechanism, frac=frac, elastic=elastic)

    def med(mechanism: str, frac: float, elastic: bool, key: str) -> float:
        return median([results[cell_for(mechanism, frac, elastic, s)][key]
                       for s in seeds])

    for mechanism in MECHANISMS:
        for frac in FRACTIONS:
            rigid = med(mechanism, frac, False, "job_time")
            elastic = med(mechanism, frac, True, "job_time")
            result.add(mechanism, frac, rigid, elastic,
                       speedup(rigid, elastic),
                       med(mechanism, frac, True, "spill_gb"),
                       med(mechanism, frac, True, "tasks_shrunk"))
    result.note("at mem_frac=1.0 rigid and elastic must coincide (no "
                "task ever shrinks); under scarcity elastic trades spill "
                "I/O for restored concurrency")
    result.note("spill traffic shares the shuffle SSD: CAD's congestion "
                "signal sees it and backs the storing stage off the "
                "device spill is hammering")
    return result


def run(scale: Scale = SMALL, seeds: Sequence[int] = (0,),
        runner: Optional[SweepRunner] = None) -> ExperimentResult:
    runner = runner if runner is not None else SweepRunner()
    results = runner.run_cells(cells(scale=scale, seeds=seeds))
    return assemble(results, scale=scale, seeds=seeds)


def main() -> None:  # pragma: no cover
    print(run().render())


if __name__ == "__main__":  # pragma: no cover
    main()
