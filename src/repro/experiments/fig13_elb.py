"""Fig 13 — Enhanced Load Balancer under storage and network bottlenecks.

GroupBy with per-node speed variation so the stock scheduler piles
intermediate data onto fast nodes (Fig 12); ELB caps any node at 125 % of
the cluster average and routes the rest to lightly loaded nodes.

* **Storage bottleneck** (Fig 13(a)): intermediate data on the SSDs.
  Paper: Spark and ELB comparable ≤ 900 GB; ELB wins ~26 % on job time
  between 1 TB and 1.5 TB (staging/storing phase up to 2.2× faster),
  computation phases unchanged.
* **Network bottleneck** (Fig 13(b)): fetch request size shrunk from
  1 GB to 128 KB so many more round trips carry the same data.  Paper:
  ELB ~14.8 % better on average, shuffle phase ~29.1 % faster over
  400 GB–1.2 TB; the imbalance hurts even small datasets (17.5 % at
  400 GB).
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence

from repro.analysis.stats import improvement
from repro.cluster.variability import LognormalSpeed
from repro.config import SparkConf
from repro.core.engine import EngineOptions, run_job
from repro.core.metrics import JobResult
from repro.experiments.common import (GB, TB, Scale, SMALL,
                                      ExperimentResult)
from repro.experiments.runner import (Cell, SweepRunner, cell_scale,
                                      make_cell)
from repro.workloads import groupby_spec

__all__ = ["run", "cells", "run_cell", "assemble",
           "PAPER_STORAGE_GAIN", "PAPER_NETWORK_SHUFFLE_GAIN"]

PAPER_STORAGE_GAIN = 26.0          # % job time, 1-1.5 TB, SSD bottleneck
PAPER_NETWORK_SHUFFLE_GAIN = 29.1  # % shuffle time, network bottleneck

STORAGE_SIZES = (600 * GB, 1024 * GB, 1.5 * TB)
NETWORK_SIZES = (400 * GB, 800 * GB, 1.2 * TB)
KB = 1024.0


def _run_one(data: float, elb: bool, scenario: str, scale: Scale,
             seed: int) -> JobResult:
    if scenario == "storage":
        spec = groupby_spec(data, shuffle_store="ssd",
                            n_reducers=scale.n_nodes * 16)
        conf = SparkConf()
    else:
        spec = groupby_spec(data, shuffle_store="ramdisk",
                            n_reducers=scale.n_nodes * 16)
        # The paper narrows the network by shrinking FetchRequests.
        conf = SparkConf(fetch_request_bytes=128 * KB)
    options = EngineOptions(conf=conf, elb=elb, seed=seed)
    # sigma is chosen so the max/mean intermediate-data imbalance at this
    # node count matches the 100-node tail the paper measured in Fig 12
    # (~1.5x): small clusters need a wider per-node draw to reproduce the
    # same extreme-order statistics.  The network scenario is the more
    # tail-sensitive one (the hot node's NIC is the critical path), so it
    # uses the wider draw.
    if scenario == "storage":
        speed_model = LognormalSpeed(sigma=0.28)
    else:
        speed_model = LognormalSpeed(sigma=0.45, low=0.4, high=2.5)
    return run_job(spec, cluster_spec=scale.cluster(), options=options,
                   speed_model=speed_model)


def cells(scale: Scale = SMALL, seeds: Sequence[int] = (0,),
          storage_sizes: Sequence[float] = STORAGE_SIZES,
          network_sizes: Sequence[float] = NETWORK_SIZES) -> List[Cell]:
    """One cell per (scenario, data size, elb on/off, seed) job."""
    return [make_cell("fig13", "job", scale, seed, scenario=scenario,
                      paper_gb=paper_bytes / GB, elb=elb)
            for scenario, sizes in (("storage", storage_sizes),
                                    ("network", network_sizes))
            for paper_bytes in sizes
            for elb in (False, True)
            for seed in seeds]


def run_cell(cell: Cell) -> Dict[str, float]:
    p = cell.params_dict
    scale = cell_scale(cell)
    res = _run_one(scale.bytes_of(p["paper_gb"] * GB), p["elb"],
                   p["scenario"], scale, cell.seed)
    return {"job_time": res.job_time, "store_time": res.store_time,
            "fetch_time": res.fetch_time}


def assemble(results: Mapping[Cell, Dict[str, float]],
             scale: Scale = SMALL, seeds: Sequence[int] = (0,),
             storage_sizes: Sequence[float] = STORAGE_SIZES,
             network_sizes: Sequence[float] = NETWORK_SIZES
             ) -> ExperimentResult:
    result = ExperimentResult(
        "fig13", "ELB vs stock Spark under storage / network bottlenecks",
        headers=["scenario", "data_GB(paper)", "spark_s", "elb_s",
                 "job_gain_%", "spark_store_s", "elb_store_s",
                 "spark_fetch_s", "elb_fetch_s"])
    for scenario, sizes in (("storage", storage_sizes),
                            ("network", network_sizes)):
        for paper_bytes in sizes:
            spark, elb = (
                _median([results[make_cell(
                    "fig13", "job", scale, s, scenario=scenario,
                    paper_gb=paper_bytes / GB, elb=flag)] for s in seeds])
                for flag in (False, True))
            result.add(scenario, paper_bytes / GB,
                       spark["job_time"], elb["job_time"],
                       improvement(spark["job_time"], elb["job_time"]),
                       spark["store_time"], elb["store_time"],
                       spark["fetch_time"], elb["fetch_time"])
    result.note(f"paper: storage ~{PAPER_STORAGE_GAIN}% job gain at "
                f"1-1.5TB; network shuffle ~{PAPER_NETWORK_SHUFFLE_GAIN}% "
                "faster")
    result.note(f"scale={scale.name}")
    return result


def run(scale: Scale = SMALL, seeds: Sequence[int] = (0,),
        storage_sizes: Sequence[float] = STORAGE_SIZES,
        network_sizes: Sequence[float] = NETWORK_SIZES,
        runner: Optional[SweepRunner] = None) -> ExperimentResult:
    runner = runner if runner is not None else SweepRunner()
    results = runner.run_cells(cells(
        scale=scale, seeds=seeds, storage_sizes=storage_sizes,
        network_sizes=network_sizes))
    return assemble(results, scale=scale, seeds=seeds,
                    storage_sizes=storage_sizes,
                    network_sizes=network_sizes)


def _median(runs: List[Dict[str, float]]) -> Dict[str, float]:
    return sorted(runs, key=lambda r: r["job_time"])[len(runs) // 2]


def main() -> None:  # pragma: no cover
    print(run().render())


if __name__ == "__main__":  # pragma: no cover
    main()
