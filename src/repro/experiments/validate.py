"""Programmatic validation of every reproduced paper claim.

``python -m repro.experiments validate`` runs each experiment at the
given scale and checks the paper's qualitative claims against the
measured rows, printing a PASS/FAIL report — the same predicates the
benchmark suite asserts, reusable outside pytest (and the source of the
paper-vs-measured table in EXPERIMENTS.md).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

from repro.experiments import registry
from repro.experiments.common import GB, Scale, SMALL, ExperimentResult
from repro.experiments.runner import SweepRunner

__all__ = ["Claim", "CLAIMS", "validate", "render_report"]


@dataclass
class Claim:
    """One paper claim with a measurable predicate."""

    claim_id: str
    experiment: str
    paper: str
    check: Callable[[ExperimentResult], bool]
    measure: Callable[[ExperimentResult], str]


def _rows_by(result: ExperimentResult, *key_cols):
    return {tuple(r[c] for c in key_cols): r for r in result.rows}


# -- predicate helpers over experiment rows ---------------------------------

def _fig05_grep_ratio(res):
    rows = _rows_by(res, 0, 1)
    return rows[("grep", 32.0)][4]


def _fig05_lr_ratio(res):
    rows = _rows_by(res, 0, 1)
    return rows[("lr", 32.0)][4]


def _fig07_ratios(res):
    return res.column("local/hdfs"), res.column("shared/local")


def _fig08_small_big(res):
    rows = _rows_by(res, 0)
    return rows[(100.0,)], rows[(1536.0,)]


def _fig09_degs(res):
    rows = _rows_by(res, 0, 1)
    return rows[("grep", 32.0)][4], rows[("lr", 32.0)][4]


CLAIMS: List[Claim] = [
    Claim("table1", "table1", "Table I parameters match verbatim",
          lambda r: all(row[-1] == "yes" for row in r.rows),
          lambda r: f"{sum(row[-1] == 'yes' for row in r.rows)}/5 match"),
    Claim("fig05-grep", "fig05",
          "Grep: Lustre up to 5.7x slower than HDFS at 32MB splits",
          lambda r: 2.0 < _fig05_grep_ratio(r) < 12.0,
          lambda r: f"{_fig05_grep_ratio(r):.2f}x"),
    Claim("fig05-lr", "fig05",
          "LR: storage architecture ~neutral (Lustre ~12.7% faster)",
          lambda r: _fig05_lr_ratio(r) < 1.1,
          lambda r: f"lustre/hdfs={_fig05_lr_ratio(r):.2f}"),
    Claim("fig07-local", "fig07",
          "HDFS beats Lustre-local, growing with size (up to 6.5x)",
          lambda r: _fig07_ratios(r)[0][-1] > max(
              2.5, _fig07_ratios(r)[0][0]),
          lambda r: f"{_fig07_ratios(r)[0][-1]:.2f}x at the largest size"),
    Claim("fig07-shared", "fig07",
          "Lustre-shared up to 3.8x worse than Lustre-local",
          lambda r: max(x for x in _fig07_ratios(r)[1]
                        if not math.isnan(x)) > 1.5,
          lambda r: f"up to {max(x for x in _fig07_ratios(r)[1] if not math.isnan(x)):.2f}x"),
    Claim("fig08-cache", "fig08",
          "SSD ~= RAMDisk at 100GB (page cache)",
          lambda r: _fig08_small_big(r)[0][3] < 1.35,
          lambda r: f"ssd/ramdisk={_fig08_small_big(r)[0][3]:.2f}"),
    Claim("fig08-capacity", "fig08",
          "RAMDisk curve ends by 1.5TB; SSD continues",
          lambda r: math.isnan(_fig08_small_big(r)[1][1])
          and not math.isnan(_fig08_small_big(r)[1][2]),
          lambda r: "ramdisk=n/a, ssd runs"),
    Claim("fig08-spread", "fig08",
          "ShuffleMapTask spread explodes at 1.5TB (paper: 18x)",
          lambda r: _fig08_small_big(r)[1][7] > 6.0,
          lambda r: f"{_fig08_small_big(r)[1][7]:.1f}x"),
    Claim("fig09-grep", "fig09",
          "Delay scheduling degrades Grep severely (paper: 42.7%)",
          lambda r: _fig09_degs(r)[0] > 15.0,
          lambda r: f"+{_fig09_degs(r)[0]:.1f}%"),
    Claim("fig09-order", "fig09",
          "Grep hurt more than LR (paper: 42.7% vs 9.9%)",
          lambda r: _fig09_degs(r)[0] > _fig09_degs(r)[1],
          lambda r: f"grep +{_fig09_degs(r)[0]:.1f}% vs "
                    f"lr +{_fig09_degs(r)[1]:.1f}%"),
    Claim("fig12-spread", "fig12",
          "Tail nodes host ~2x the head nodes' intermediate data",
          lambda r: r.rows[-1][5] > 1.3,
          lambda r: f"tail/head={r.rows[-1][5]:.2f}"),
    Claim("fig13-storage", "fig13",
          "ELB ~26% job gain under the storage bottleneck (1-1.5TB)",
          lambda r: max(row[4] for row in r.rows
                        if row[0] == "storage") > 8.0,
          lambda r: f"{max(row[4] for row in r.rows if row[0] == 'storage'):.1f}%"),
    Claim("fig13-network", "fig13",
          "ELB shuffle ~29% faster under the network bottleneck",
          lambda r: any(row[8] < row[7] * 0.95 for row in r.rows
                        if row[0] == "network"),
          lambda r: "; ".join(
              f"{(1 - row[8] / row[7]) * 100:.1f}%" for row in r.rows
              if row[0] == "network")),
    Claim("fig14-quiet", "fig14",
          "CAD: no effect at small data sizes",
          lambda r: abs(r.rows[0][3]) < 12.0,
          lambda r: f"{r.rows[0][3]:+.1f}% at {r.rows[0][0]:.0f}GB"),
    Claim("fig14-gain", "fig14",
          "CAD storing-phase gain in the GC regime (paper: 41.2%)",
          lambda r: r.rows[-1][6] > 10.0,
          lambda r: f"-{r.rows[-1][6]:.1f}% storing at "
                    f"{r.rows[-1][0]:.0f}GB"),
]


def validate(scale: Scale = SMALL,
             seeds: Sequence[int] = (0, 1, 2),
             runner: Optional[SweepRunner] = None) -> List[Dict]:
    """Run all experiments once and evaluate every claim.

    Every cell-decomposable experiment contributes its cells to **one**
    batch handed to the sweep runner, so ``--jobs N`` parallelises
    across experiments, not just within one, and the result cache is
    consulted per cell.  Passing no runner keeps the historical
    serial, side-effect-free behaviour.
    """
    runner = runner if runner is not None else SweepRunner()
    needed = {c.experiment for c in CLAIMS}
    celled = [e for e in sorted(needed) if registry.supports_cells(e)]
    batch = []
    for exp_id in celled:
        batch.extend(registry.module(exp_id).cells(scale=scale,
                                                   seeds=tuple(seeds)))
    cell_results = runner.run_cells(batch)

    results: Dict[str, ExperimentResult] = {}
    for exp_id in sorted(needed):
        if exp_id in celled:
            results[exp_id] = registry.module(exp_id).assemble(
                cell_results, scale=scale, seeds=tuple(seeds))
        elif exp_id == "table1":
            results[exp_id] = registry.get(exp_id)()
        else:
            results[exp_id] = registry.get(exp_id)(scale=scale,
                                                   seeds=tuple(seeds))
    report = []
    for claim in CLAIMS:
        res = results[claim.experiment]
        try:
            ok = bool(claim.check(res))
            measured = claim.measure(res)
        except Exception as exc:  # surface, don't hide, broken claims
            ok = False
            measured = f"error: {exc!r}"
        report.append({"id": claim.claim_id, "paper": claim.paper,
                       "measured": measured, "pass": ok})
    return report


def render_report(report: List[Dict]) -> str:
    lines = ["claim validation report", "=" * 60]
    for row in report:
        status = "PASS" if row["pass"] else "FAIL"
        lines.append(f"[{status}] {row['id']}: {row['paper']}")
        lines.append(f"        measured: {row['measured']}")
    n_pass = sum(r["pass"] for r in report)
    lines.append(f"{n_pass}/{len(report)} claims reproduced")
    return "\n".join(lines)
