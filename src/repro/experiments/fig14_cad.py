"""Fig 14 — Congestion-Aware task Dispatching on SSD-backed shuffle.

GroupBy with intermediate data on the SSDs, stock dispatch vs CAD.
Paper: CAD accelerates the storing phase once the data size exceeds
~600 GB — by up to 41.2 % over 700 GB–1.5 TB — without hurting the other
phases; job execution time improves ~19.8 % on average.
"""

from __future__ import annotations

from typing import Sequence

from repro.analysis.stats import improvement
from repro.cluster.variability import LognormalSpeed
from repro.core.engine import EngineOptions, run_job
from repro.core.metrics import JobResult
from repro.experiments.common import (GB, TB, Scale, SMALL,
                                      ExperimentResult)
from repro.workloads import groupby_spec

__all__ = ["run", "PAPER_STORE_GAIN", "PAPER_JOB_GAIN"]

PAPER_STORE_GAIN = 41.2   # % storing-phase gain, 700 GB - 1.5 TB
PAPER_JOB_GAIN = 19.8     # % average job-time gain

PAPER_DATA_SIZES = (400 * GB, 600 * GB, 800 * GB, 1024 * GB, 1.5 * TB)


def _run_one(data: float, cad: bool, scale: Scale, seed: int) -> JobResult:
    spec = groupby_spec(data, shuffle_store="ssd",
                        n_reducers=scale.n_nodes * 16)
    options = EngineOptions(cad=cad, seed=seed)
    return run_job(spec, cluster_spec=scale.cluster(), options=options,
                   speed_model=LognormalSpeed())


def run(scale: Scale = SMALL, seeds: Sequence[int] = (0,),
        data_sizes: Sequence[float] = PAPER_DATA_SIZES) -> ExperimentResult:
    result = ExperimentResult(
        "fig14", "CAD vs stock Spark dispatch (SSD intermediate data)",
        headers=["data_GB(paper)", "spark_s", "cad_s", "job_gain_%",
                 "spark_store_s", "cad_store_s", "store_gain_%",
                 "spark_fetch_s", "cad_fetch_s"])
    for paper_bytes in data_sizes:
        data = scale.bytes_of(paper_bytes)
        spark = _median([_run_one(data, False, scale, s) for s in seeds])
        cad = _median([_run_one(data, True, scale, s) for s in seeds])
        result.add(paper_bytes / GB, spark.job_time, cad.job_time,
                   improvement(spark.job_time, cad.job_time),
                   spark.store_time, cad.store_time,
                   improvement(spark.store_time, cad.store_time),
                   spark.fetch_time, cad.fetch_time)
    result.note(f"paper: storing phase up to -{PAPER_STORE_GAIN}% beyond "
                f"700GB; job time -{PAPER_JOB_GAIN}% on average; no effect "
                "below ~600GB")
    result.note(f"scale={scale.name}")
    return result


def _median(runs):
    return sorted(runs, key=lambda r: r.job_time)[len(runs) // 2]


def main() -> None:  # pragma: no cover
    print(run().render())


if __name__ == "__main__":  # pragma: no cover
    main()
