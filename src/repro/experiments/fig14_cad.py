"""Fig 14 — Congestion-Aware task Dispatching on SSD-backed shuffle.

GroupBy with intermediate data on the SSDs, stock dispatch vs CAD.
Paper: CAD accelerates the storing phase once the data size exceeds
~600 GB — by up to 41.2 % over 700 GB–1.5 TB — without hurting the other
phases; job execution time improves ~19.8 % on average.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence

from repro.analysis.stats import improvement
from repro.cluster.variability import LognormalSpeed
from repro.core.engine import EngineOptions, run_job
from repro.core.metrics import JobResult
from repro.experiments.common import (GB, TB, Scale, SMALL,
                                      ExperimentResult)
from repro.experiments.runner import (Cell, SweepRunner, cell_scale,
                                      make_cell)
from repro.workloads import groupby_spec

__all__ = ["run", "cells", "run_cell", "assemble",
           "PAPER_STORE_GAIN", "PAPER_JOB_GAIN"]

PAPER_STORE_GAIN = 41.2   # % storing-phase gain, 700 GB - 1.5 TB
PAPER_JOB_GAIN = 19.8     # % average job-time gain

PAPER_DATA_SIZES = (400 * GB, 600 * GB, 800 * GB, 1024 * GB, 1.5 * TB)


def _run_one(data: float, cad: bool, scale: Scale, seed: int) -> JobResult:
    spec = groupby_spec(data, shuffle_store="ssd",
                        n_reducers=scale.n_nodes * 16)
    options = EngineOptions(cad=cad, seed=seed)
    return run_job(spec, cluster_spec=scale.cluster(), options=options,
                   speed_model=LognormalSpeed())


def cells(scale: Scale = SMALL, seeds: Sequence[int] = (0,),
          data_sizes: Sequence[float] = PAPER_DATA_SIZES) -> List[Cell]:
    """One cell per (data size, cad on/off, seed) job."""
    return [make_cell("fig14", "job", scale, seed,
                      paper_gb=paper_bytes / GB, cad=cad)
            for paper_bytes in data_sizes
            for cad in (False, True)
            for seed in seeds]


def run_cell(cell: Cell) -> Dict[str, float]:
    p = cell.params_dict
    scale = cell_scale(cell)
    res = _run_one(scale.bytes_of(p["paper_gb"] * GB), p["cad"], scale,
                   cell.seed)
    return {"job_time": res.job_time, "store_time": res.store_time,
            "fetch_time": res.fetch_time}


def assemble(results: Mapping[Cell, Dict[str, float]],
             scale: Scale = SMALL, seeds: Sequence[int] = (0,),
             data_sizes: Sequence[float] = PAPER_DATA_SIZES
             ) -> ExperimentResult:
    result = ExperimentResult(
        "fig14", "CAD vs stock Spark dispatch (SSD intermediate data)",
        headers=["data_GB(paper)", "spark_s", "cad_s", "job_gain_%",
                 "spark_store_s", "cad_store_s", "store_gain_%",
                 "spark_fetch_s", "cad_fetch_s"])
    for paper_bytes in data_sizes:
        spark, cad = (
            _median([results[make_cell("fig14", "job", scale, s,
                                       paper_gb=paper_bytes / GB,
                                       cad=flag)] for s in seeds])
            for flag in (False, True))
        result.add(paper_bytes / GB, spark["job_time"], cad["job_time"],
                   improvement(spark["job_time"], cad["job_time"]),
                   spark["store_time"], cad["store_time"],
                   improvement(spark["store_time"], cad["store_time"]),
                   spark["fetch_time"], cad["fetch_time"])
    result.note(f"paper: storing phase up to -{PAPER_STORE_GAIN}% beyond "
                f"700GB; job time -{PAPER_JOB_GAIN}% on average; no effect "
                "below ~600GB")
    result.note(f"scale={scale.name}")
    return result


def run(scale: Scale = SMALL, seeds: Sequence[int] = (0,),
        data_sizes: Sequence[float] = PAPER_DATA_SIZES,
        runner: Optional[SweepRunner] = None) -> ExperimentResult:
    runner = runner if runner is not None else SweepRunner()
    results = runner.run_cells(cells(scale=scale, seeds=seeds,
                                     data_sizes=data_sizes))
    return assemble(results, scale=scale, seeds=seeds,
                    data_sizes=data_sizes)


def _median(runs: List[Dict[str, float]]) -> Dict[str, float]:
    return sorted(runs, key=lambda r: r["job_time"])[len(runs) // 2]


def main() -> None:  # pragma: no cover
    print(run().render())


if __name__ == "__main__":  # pragma: no cover
    main()
