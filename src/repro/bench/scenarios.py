"""Benchmark scenarios for the simulation engine's measured hot paths.

Each scenario is a self-contained function that builds a fresh
:class:`~repro.sim.core.Simulator`, drives one hot-path-heavy workload
to completion, and returns a :class:`ScenarioResult` holding throughput
inputs (dispatched events, final sim time) plus a *fingerprint* — the
exact simulation outcome (completion times, bytes completed) used by
``repro bench --check`` to prove the optimized engine byte-identical to
the retained reference paths.

Scenarios deliberately mirror the paper's stress regimes: a
full-Hyperion-scale shuffle wave (101 nodes, thousands of concurrent
fabric flows), an SSD spill storm through a concurrency-degraded
:class:`~repro.sim.fluid.FluidPipe`, an end-to-end Fig-8-style GroupBy
job, and pure event-loop timer churn.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.cluster.cluster import Cluster
from repro.cluster.spec import hyperion
from repro.cluster.variability import LognormalSpeed
from repro.core.engine import EngineOptions, run_job
from repro.core.faults import FaultPlan
from repro.net import Fabric
from repro.obs import wiring as obs_wiring
from repro.obs.telemetry import Telemetry
from repro.sim import FluidPipe, Simulator
from repro.workloads import groupby_spec

__all__ = ["SCENARIOS", "ScenarioResult", "run_scenario"]

GB = 1024.0 ** 3
MB = 1024.0 ** 2


@dataclass
class ScenarioResult:
    """One scenario execution's outcome and throughput inputs."""

    #: Events + timers dispatched by the simulator during the scenario.
    events: int
    #: Final simulated time (seconds).
    sim_time: float
    #: Exact simulation outcome; compared with ``==`` across engine modes.
    fingerprint: Any
    #: Scenario-specific scalar metrics for the JSON report.
    metrics: Dict[str, float] = field(default_factory=dict)


def _shuffle_wave(quick: bool,
                  telemetry: Optional[Telemetry] = None) -> ScenarioResult:
    """Full-scale reduce-side shuffle wave on the fabric.

    Every node runs a reducer fetching one partition slice from every
    other node with a bounded fetch window, the way shuffle waves hit
    the fabric in the paper's 101-node runs: thousands of flows total,
    hundreds concurrent, a global rate recomputation per arrival and
    departure.
    """
    n_nodes = 24 if quick else 101
    window = 2 if quick else 4
    sim = Simulator()
    fab = Fabric(sim, n_nodes=n_nodes, nic_bw=4 * GB, latency=20e-6)
    if telemetry is not None:
        obs_wiring.register_fabric(telemetry.registry, fab)
        telemetry.bind(sim)
    completions: List[Tuple[Tuple[int, int], float]] = []

    def issue(reducer: int, pending: List[int]) -> None:
        if not pending:
            return
        sender = pending.pop()
        # Slight size variation keeps completion times distinct so the
        # flow set churns instead of draining in lockstep.
        size = 24 * MB + (sender * 131 + reducer * 17) % 4096 * 1024.0
        ev = fab.transfer(sender, reducer, size, tag=(sender, reducer))

        def on_done(e, reducer=reducer, pending=pending):
            completions.append((e.value.tag, sim.now))
            issue(reducer, pending)

        ev.add_callback(on_done)

    for reducer in range(n_nodes):
        senders = [s for s in range(n_nodes) if s != reducer]
        # Rotate so reducers start on distinct senders (wave skew).
        senders = senders[reducer % len(senders):] + \
            senders[:reducer % len(senders)]
        senders.reverse()
        for _ in range(window):
            issue(reducer, senders)
    sim.run()
    return ScenarioResult(
        events=sim.events_dispatched,
        sim_time=sim.now,
        fingerprint=(tuple(completions), fab.bytes_completed),
        metrics={"n_flows": float(n_nodes * (n_nodes - 1)),
                 "bytes_completed": fab.bytes_completed})


def _shuffle_wave_10x(quick: bool,
                      telemetry: Optional[Telemetry] = None
                      ) -> ScenarioResult:
    """Reduce-side shuffle wave at 10x Hyperion scale (1,010 nodes).

    Same fetch-chain structure as ``shuffle_wave`` but each reducer
    pulls from a bounded, deterministically-spread sender set instead of
    every peer — at this node count the bottleneck under test is the
    allocator's and calendar's scaling with *fabric size*, not raw flow
    count.  Above ``_COMPACT_NODES`` the optimized allocator runs over
    the compressed active-endpoint set; the reference path still scans
    all 2 * n_nodes channels per water-level round.
    """
    n_nodes = 253 if quick else 1010
    fan = 8 if quick else 12
    window = 2
    sim = Simulator()
    fab = Fabric(sim, n_nodes=n_nodes, nic_bw=4 * GB, latency=20e-6)
    if telemetry is not None:
        obs_wiring.register_fabric(telemetry.registry, fab)
        telemetry.bind(sim)
    completions: List[Tuple[Tuple[int, int], float]] = []

    def issue(reducer: int, pending: List[int]) -> None:
        if not pending:
            return
        sender = pending.pop()
        size = 12 * MB + (sender * 131 + reducer * 17) % 4096 * 1024.0
        ev = fab.transfer(sender, reducer, size, tag=(sender, reducer))

        def on_done(e, reducer=reducer, pending=pending):
            completions.append((e.value.tag, sim.now))
            issue(reducer, pending)

        ev.add_callback(on_done)

    for reducer in range(n_nodes):
        # Deterministic sender spread, sender != reducer guaranteed
        # (offset < n_nodes - 1), offsets distinct for this fan-out.
        senders = [(reducer + 1 + (k * 83) % (n_nodes - 1)) % n_nodes
                   for k in range(fan)]
        senders.reverse()
        for _ in range(window):
            issue(reducer, senders)
    sim.run()
    return ScenarioResult(
        events=sim.events_dispatched,
        sim_time=sim.now,
        fingerprint=(tuple(completions), fab.bytes_completed),
        metrics={"n_flows": float(n_nodes * fan),
                 "n_nodes": float(n_nodes),
                 "bytes_completed": fab.bytes_completed})


def _idle_giant(quick: bool,
                telemetry: Optional[Telemetry] = None) -> ScenarioResult:
    """10,000-node idle-heavy smoke: O(active) must mean idle is free.

    A small shuffle wave (first 101 nodes) plus one sparse ELB-scheduled
    stage run across the *entire* cluster — so the frontier, the cached
    cluster average, and the compressed fabric channel set all face four
    orders of magnitude more nodes than active work.  The acceptance bar
    (ISSUE 7): per-event wall cost within 2x of the 101-node scenario,
    i.e. the 9,899 idle nodes cost nothing per event.
    """
    from repro.core.elb import EnhancedLoadBalancer
    from repro.core.policies import LocalityFirstPolicy
    from repro.core.scheduler import StageRunner
    from repro.core.task import SimTask
    from repro.core.volumes import NodeVolumes

    n_nodes = 1000 if quick else 10_000
    active = 24 if quick else 101
    fan = 8 if quick else 10
    n_tasks = 100 if quick else 600
    sim = Simulator()
    fab = Fabric(sim, n_nodes=n_nodes, nic_bw=4 * GB, latency=20e-6)
    if telemetry is not None:
        obs_wiring.register_fabric(telemetry.registry, fab)
        telemetry.bind(sim)
    completions: List[Tuple[Tuple[int, int], float]] = []

    def issue(reducer: int, pending: List[int]) -> None:
        if not pending:
            return
        sender = pending.pop()
        size = 8 * MB + (sender * 131 + reducer * 17) % 2048 * 1024.0
        ev = fab.transfer(sender, reducer, size, tag=(sender, reducer))

        def on_done(e, reducer=reducer, pending=pending):
            completions.append((e.value.tag, sim.now))
            issue(reducer, pending)

        ev.add_callback(on_done)

    for reducer in range(active):
        senders = [(reducer + 1 + (k * 83) % (active - 1)) % active
                   for k in range(fan)]
        senders.reverse()
        for _ in range(2):
            issue(reducer, senders)

    # One sparse stage over the full cluster: short tasks, ELB balance
    # bookkeeping per completion — every offer pass walks the frontier.
    vols = NodeVolumes(n_nodes)

    def make_body(tid: int):
        dur = 0.004 + (tid * 13 % 97) * 1e-4

        def body(node: int, dur=dur):
            yield sim.timeout(dur)

        return body

    tasks = [SimTask(tid, "sparse", make_body(tid), nbytes=1.0)
             for tid in range(n_tasks)]
    policy = EnhancedLoadBalancer(LocalityFirstPolicy(), vols)

    def on_task_done(task, node, record):
        vols[node] += 1.0 + float(task.task_id % 7)

    runner = StageRunner(sim, n_nodes, cores_per_node=2, tasks=tasks,
                         policy=policy, on_complete=on_task_done)
    runner.run()
    sim.run()
    records = tuple(sorted(
        (r.task_id, r.node, r.started_at, r.finished_at)
        for r in runner.records))
    return ScenarioResult(
        events=sim.events_dispatched,
        sim_time=sim.now,
        fingerprint=(tuple(completions), fab.bytes_completed, records,
                     tuple(float(v) for v in vols)),
        metrics={"n_nodes": float(n_nodes),
                 "n_flows": float(active * fan),
                 "n_tasks": float(n_tasks),
                 "elb_vetoes": float(policy.vetoes),
                 "bytes_completed": fab.bytes_completed})


def _ssd_spill(quick: bool,
               telemetry: Optional[Telemetry] = None) -> ScenarioResult:
    """SSD-spill storm through a concurrency-degraded FluidPipe.

    Many writers push chained spill blocks through one pipe whose
    aggregate capacity decays with queue depth (the GC-interference
    shape of Fig. 8d): every completion immediately issues the next
    block at the same instant, the worst case for reallocation churn.
    """
    writers = 48 if quick else 192
    blocks = 12 if quick else 48
    sim = Simulator()
    pipe = FluidPipe(sim, capacity=0.0, name="spill",
                     capacity_fn=lambda n: 387 * MB / (1.0 + 0.02 * n))
    if telemetry is not None:
        obs_wiring.register_pipe(telemetry.registry, pipe)
        telemetry.bind(sim)
    completions: List[Tuple[Tuple[int, int], float]] = []

    def chain(writer: int, k: int) -> None:
        size = 8 * MB + (writer * 37 + k * 11) % 1024 * 1024.0
        cap = 64 * MB if (writer + k) % 3 else math.inf
        ev = pipe.transfer(size, cap=cap, tag=(writer, k))

        def on_done(e, writer=writer, k=k):
            completions.append((e.value.tag, sim.now))
            if k + 1 < blocks:
                chain(writer, k + 1)

        ev.add_callback(on_done)

    for writer in range(writers):
        chain(writer, 0)
    sim.run()
    return ScenarioResult(
        events=sim.events_dispatched,
        sim_time=sim.now,
        fingerprint=(tuple(completions), pipe.bytes_completed),
        metrics={"n_flows": float(writers * blocks),
                 "bytes_completed": pipe.bytes_completed})


def _fig08_job(quick: bool,
               telemetry: Optional[Telemetry] = None) -> ScenarioResult:
    """End-to-end Fig-8-style GroupBy with intermediate data on SSD."""
    n_nodes = 4 if quick else 8
    data = (4 if quick else 24) * GB
    spec = groupby_spec(data, shuffle_store="ssd")
    options = EngineOptions(seed=7)
    cluster = Cluster(hyperion(n_nodes),
                      speed_model=LognormalSpeed(sigma=0.18),
                      seed=options.seed)
    result = run_job(spec, options=options, cluster=cluster,
                     telemetry=telemetry)
    tasks = tuple(sorted(
        (t.phase, t.task_id, t.node, t.started_at, t.finished_at)
        for t in result.all_tasks()))
    fingerprint = (result.job_time,
                   tuple(sorted(result.dissection().items())),
                   tasks,
                   tuple(float(x) for x in result.node_intermediate))
    return ScenarioResult(
        events=cluster.sim.events_dispatched,
        sim_time=result.job_time,
        fingerprint=fingerprint,
        metrics={"job_time_s": result.job_time,
                 "n_tasks": float(len(tasks))})


def _spill_pressure(quick: bool,
                    telemetry: Optional[Telemetry] = None
                    ) -> ScenarioResult:
    """GroupBy under executor-heap scarcity with elastic admission
    (DESIGN.md §13).

    Heaps at 40% of the Spark allotment force the memory gate to shrink
    tasks; shrunk attempts spill through the SSD page-cache/device path
    alongside the shuffle traffic.  The fingerprint covers the full task
    schedule, per-attempt heap decisions, and the spill counters, so
    ``--check`` proves memory elasticity deterministic and engine-mode
    independent.
    """
    from repro.core.memory import MemoryConfig
    n_nodes = 4 if quick else 8
    data = (4 if quick else 24) * GB
    spec = groupby_spec(data, shuffle_store="ssd")
    options = EngineOptions(seed=13, memory=MemoryConfig(
        mem_frac=0.4, elastic=True, spill_store="ssd",
        spill_ratio=0.5, spill_gamma=1.5))
    cluster = Cluster(hyperion(n_nodes),
                      speed_model=LognormalSpeed(sigma=0.18),
                      seed=options.seed)
    result = run_job(spec, options=options, cluster=cluster,
                     telemetry=telemetry)
    mem = result.memory
    tasks = tuple(sorted(
        (t.phase, t.task_id, t.node, t.started_at, t.finished_at)
        for t in result.all_tasks()))
    fingerprint = (result.job_time,
                   tuple(sorted(result.dissection().items())),
                   tasks,
                   (mem.tasks_shrunk, mem.grants_declined,
                    mem.min_granted_frac, mem.spill_events,
                    mem.spill_bytes_written, mem.spill_bytes_read),
                   tuple(float(x) for x in result.node_intermediate))
    return ScenarioResult(
        events=cluster.sim.events_dispatched,
        sim_time=result.job_time,
        fingerprint=fingerprint,
        metrics={"job_time_s": result.job_time,
                 "tasks_shrunk": float(mem.tasks_shrunk),
                 "spill_gb": mem.spill_bytes_written / GB})


def _node_crash(quick: bool,
                telemetry: Optional[Telemetry] = None) -> ScenarioResult:
    """Mid-store node crash, lineage recovery, restart (DESIGN.md §9).

    A node dies while its pinned ShuffleMapTasks are writing: its
    memory-resident map outputs are lost, dependent fetches gate on the
    re-materialisation, and the node later rejoins empty.  The
    fingerprint covers the recovery bookkeeping as well as the task
    schedule, so ``--check`` proves fault handling itself is
    deterministic and engine-mode independent.
    """
    n_nodes = 4 if quick else 8
    data = (2 if quick else 12) * GB
    plan = (FaultPlan.single_crash(node=1, at=0.911, restart_at=1.2)
            if quick else
            FaultPlan.single_crash(node=2, at=1.1, restart_at=3.0))
    spec = groupby_spec(data, shuffle_store="ssd")
    options = EngineOptions(seed=11, fault_plan=plan)
    cluster = Cluster(hyperion(n_nodes), seed=options.seed)
    result = run_job(spec, options=options, cluster=cluster,
                     telemetry=telemetry)
    rec = result.recovery
    tasks = tuple(sorted(
        (t.phase, t.task_id, t.node, t.started_at, t.finished_at)
        for t in result.all_tasks()))
    fingerprint = (result.job_time,
                   tasks,
                   (rec.node_crashes, rec.node_restarts,
                    rec.tasks_recomputed, rec.bytes_recomputed,
                    rec.bytes_restored, rec.crash_requeues,
                    rec.tasks_lost, rec.recovery_time),
                   tuple(float(x) for x in result.node_intermediate))
    return ScenarioResult(
        events=cluster.sim.events_dispatched,
        sim_time=result.job_time,
        fingerprint=fingerprint,
        metrics={"job_time_s": result.job_time,
                 "tasks_recomputed": float(rec.tasks_recomputed),
                 "bytes_recomputed": rec.bytes_recomputed,
                 "recovery_time_s": rec.recovery_time})


def _stream_sustained(quick: bool,
                      telemetry: Optional[Telemetry] = None
                      ) -> ScenarioResult:
    """Continuous two-tenant job stream on one warm cluster (serve layer).

    Poisson arrivals, fair-share slot leasing with a moving executor
    handoff, per-job cleanup between jobs — the multi-job machinery end
    to end.  The fingerprint covers every job's arrival, first core
    grant, and completion, so ``--check`` proves the inter-job scheduler
    (and the warm-cluster teardown it depends on) deterministic and
    engine-mode independent.
    """
    from repro.serve import StreamServer, Tenant
    tenants = (Tenant("etl", weight=2.0, quota=1.0),
               Tenant("adhoc", weight=1.0, quota=0.5))
    server = StreamServer(
        tenants,
        arrival_rate=0.5 if quick else 0.3,
        n_jobs=8 if quick else 24,
        policy="fair",
        base_gb=2.0 if quick else 6.0,
        seed=5,
        moving_delay=0.25,
        cluster_spec=hyperion(4 if quick else 8),
        speed_model=LognormalSpeed(sigma=0.18),
        telemetry=telemetry)
    result = server.run()
    outcomes = tuple(sorted(
        (o.tenant, o.index, o.workload, o.scale_gb,
         o.arrived_at, o.first_grant_at, o.finished_at)
        for o in result.outcomes))
    fingerprint = (result.makespan, outcomes)
    lats = [o.latency for o in result.outcomes]
    return ScenarioResult(
        events=server.last_events_dispatched,
        sim_time=result.makespan,
        fingerprint=fingerprint,
        metrics={"n_jobs": float(len(result.outcomes)),
                 "makespan_s": result.makespan,
                 "latency_mean_s": sum(lats) / len(lats)})


def _timer_churn(quick: bool,
                 telemetry: Optional[Telemetry] = None) -> ScenarioResult:
    """Pure event-loop churn: chained lightweight timers.

    Measures the per-dispatch cost of ``schedule_callback`` — the single
    most-allocated operation in a run — with no fluid machinery attached.
    """
    chains = 200 if quick else 1000
    depth = 100 if quick else 400
    sim = Simulator()
    if telemetry is not None:
        telemetry.registry.gauge("sim.queue_depth",
                                 lambda: float(len(sim._queue)))
        telemetry.bind(sim)
    ticks: List[float] = []

    def tick(chain: int, k: int) -> None:
        if k >= depth:
            ticks.append(sim.now)
            return
        sim.schedule_callback(1e-4 + 1e-7 * ((chain * 7 + k) % 13),
                              tick, chain, k + 1)

    for chain in range(chains):
        sim.schedule_callback(1e-6 * chain, tick, chain, 0)
    sim.run()
    return ScenarioResult(
        events=sim.events_dispatched,
        sim_time=sim.now,
        fingerprint=(tuple(ticks), sim.events_dispatched),
        metrics={"n_timers": float(chains * depth)})


SCENARIOS: Dict[str, Callable[[bool], ScenarioResult]] = {
    "shuffle_wave": _shuffle_wave,
    "shuffle_wave_10x": _shuffle_wave_10x,
    "idle_giant": _idle_giant,
    "ssd_spill": _ssd_spill,
    "fig08_job": _fig08_job,
    "spill_pressure": _spill_pressure,
    "node_crash": _node_crash,
    "stream_sustained": _stream_sustained,
    "timer_churn": _timer_churn,
}


def run_scenario(name: str, quick: bool = False,
                 telemetry: Optional[Telemetry] = None) -> ScenarioResult:
    """Execute one named scenario in the currently active engine mode.

    With a ``telemetry`` bundle attached, the scenario's simulator is
    instrumented (gauges + run-log sink + probe) — the harness uses this
    to measure instrumentation overhead and assert the fingerprint is
    unchanged by observation.
    """
    try:
        fn = SCENARIOS[name]
    except KeyError:
        raise ValueError(
            f"unknown scenario {name!r}; have {sorted(SCENARIOS)}") from None
    result = fn(quick, telemetry)
    if telemetry is not None:
        telemetry.finish()
    return result
