"""Tracked performance benchmarks for the simulation engine.

``repro bench`` runs macro scenarios over the engine's measured hot
paths (fabric shuffle waves, FluidPipe spill storms, an end-to-end
Fig-8-style job, event-loop timer churn), reports wall time and
events/sec, and emits one ``BENCH_<name>.json`` per scenario so the
perf trajectory accumulates across commits.  ``--check`` additionally
re-runs every scenario under the retained pre-optimization reference
paths and asserts byte-identical simulation results.

See :mod:`repro.bench.scenarios` for the workloads,
:mod:`repro.bench.harness` for the JSON schema, and ``benchmarks/perf/``
for usage documentation.
"""

from repro.bench.harness import (BenchReport, bench_scenario, main,
                                 run_bench)
from repro.bench.scenarios import SCENARIOS, ScenarioResult, run_scenario

__all__ = [
    "SCENARIOS",
    "BenchReport",
    "ScenarioResult",
    "bench_scenario",
    "main",
    "run_bench",
    "run_scenario",
]
