"""Benchmark harness: timing, the ``BENCH_*.json`` schema, and --check.

The harness runs each scenario under the optimized engine and — for
``--baseline`` / ``--check`` — again under the retained reference paths
(:mod:`repro.sim.perfmode`), then writes one ``BENCH_<name>.json`` per
scenario in a stable schema so the repository's perf trajectory can
accumulate across commits (see DESIGN.md §8 for how to read it):

.. code-block:: json

    {
      "schema": 4,
      "name": "shuffle_wave",
      "quick": false,
      "unix_time": 1754000000.0,
      "optimized":  {"wall_s": ..., "events": ..., "events_per_s": ...,
                     "kernel_mode": "c", "sim_time_s": ...,
                     "metrics": {...}, "fingerprint_sha256": "..."},
      "reference":  {... same shape, "kernel_mode": "python" ...},
      "speedup_events_per_s": 3.4,
      "check": {"ran": true, "passed": true},
      "telemetry": {"wall_s": ..., "events_per_s": ...,
                    "overhead_pct": 2.1, "fingerprint_matches": true},
      "spans": {"wall_s": ..., "events_per_s": ...,
                "overhead_pct": 3.0, "fingerprint_matches": true,
                "n_spans": 1234}
    }

``reference``/``speedup_events_per_s`` are ``null`` unless a baseline
was measured; ``check.passed`` asserts the two engine modes produced
**byte-identical** simulation results (same completion times, same
bytes completed), which is what makes the optimization provably
behavior-preserving rather than merely plausible.

``telemetry`` (schema 2) times the optimized engine a second time with
a full observation bundle attached — gauges wired, run-log sink
installed, probe sampling — so the tracked perf trajectory also records
what observation *costs* (``overhead_pct``, vs the bare optimized wall)
and re-asserts per commit that it costs nothing in *behavior*
(``fingerprint_matches``).

Schema 3 adds:

* ``kernel_mode`` per timed run — ``"c"`` when both compiled kernels
  (:mod:`repro.net.fastalloc`, :mod:`repro.sim.fastdrain`) loaded,
  ``"numpy"`` when the optimized engine fell back to vectorized python,
  and ``"python"`` for reference rows.  Numbers from different kernel
  modes are not comparable; the column makes that visible in the
  trajectory instead of silently mixing them.
* ``repro bench --profile`` — a cProfile'd second optimized run per
  scenario, written as ``PROFILE_<name>.pstats`` (load with
  :mod:`pstats` or snakeviz) plus a ``PROFILE_<name>.json`` top-N
  hot-function table for diffing across commits without tooling.
* ``repro bench --compare OLD`` — prints the events/s delta against a
  previous ``BENCH_*.json`` (or a directory of them), flagging drops
  greater than 5 % as ``REGRESSION``.  Informational only: the exit
  code stays 0 so noisy CI boxes don't flap, but the highlight makes
  drift impossible to miss in the log.

Schema 4 adds ``spans``: a fourth timed run that attaches the same
telemetry bundle *and* folds the event stream into the span tree +
critical path (:mod:`repro.obs.spans` / :mod:`repro.obs.critpath`)
inside the timing window — what a ``repro explain`` costs end to end
(``overhead_pct`` vs the bare optimized wall, ``n_spans`` assembled,
and ``fingerprint_matches`` re-asserting that explanation never
perturbs the simulation).
"""

from __future__ import annotations

import functools
import gc
import hashlib
import json
import os
import time
from dataclasses import dataclass
from typing import Any, Dict, List, Optional

from repro.bench.scenarios import SCENARIOS, ScenarioResult, run_scenario
from repro.experiments.runner import map_parallel
from repro.sim import perfmode

__all__ = ["BenchReport", "bench_scenario", "kernel_mode",
           "profile_scenario", "load_compare", "run_bench", "main"]

SCHEMA_VERSION = 4


def kernel_mode(reference: bool = False) -> str:
    """Which inner-loop implementation produced a timed run's numbers.

    ``"c"`` — both compiled kernels (fabric allocator + fluid drain /
    fair share) loaded; ``"numpy"`` — the optimized engine fell back to
    the vectorized python paths (no C compiler, or
    ``REPRO_NO_CKERNEL=1``); ``"python"`` — the retained reference
    engine, which never uses either.  events/s from different modes are
    not comparable, so the column travels with every row.
    """
    if reference:
        return "python"
    from repro.net import fastalloc
    from repro.sim import fastdrain
    return "c" if (fastalloc.AVAILABLE and fastdrain.AVAILABLE) else "numpy"


@dataclass
class TimedRun:
    """One timed scenario execution in one engine mode."""

    mode: str
    wall_s: float
    result: ScenarioResult

    @property
    def events_per_s(self) -> float:
        return self.result.events / self.wall_s if self.wall_s > 0 else 0.0

    def to_json(self) -> Dict[str, Any]:
        return {
            "mode": self.mode,
            "wall_s": round(self.wall_s, 6),
            "events": self.result.events,
            "events_per_s": round(self.events_per_s, 1),
            "kernel_mode": kernel_mode(reference=self.mode == "reference"),
            "sim_time_s": self.result.sim_time,
            "metrics": self.result.metrics,
            "fingerprint_sha256": fingerprint_digest(
                self.result.fingerprint),
        }


@dataclass
class BenchReport:
    """Everything measured for one scenario."""

    name: str
    quick: bool
    optimized: TimedRun
    reference: Optional[TimedRun] = None
    check_ran: bool = False
    check_passed: Optional[bool] = None
    telemetry: Optional[TimedRun] = None
    telemetry_matches: Optional[bool] = None
    spans: Optional[TimedRun] = None
    spans_matches: Optional[bool] = None
    spans_count: int = 0

    @property
    def speedup(self) -> Optional[float]:
        if self.reference is None or self.reference.events_per_s == 0:
            return None
        return self.optimized.events_per_s / self.reference.events_per_s

    @property
    def telemetry_overhead_pct(self) -> Optional[float]:
        if self.telemetry is None or self.optimized.wall_s <= 0:
            return None
        return (self.telemetry.wall_s - self.optimized.wall_s) \
            / self.optimized.wall_s * 100.0

    @property
    def spans_overhead_pct(self) -> Optional[float]:
        if self.spans is None or self.optimized.wall_s <= 0:
            return None
        return (self.spans.wall_s - self.optimized.wall_s) \
            / self.optimized.wall_s * 100.0

    def to_json(self) -> Dict[str, Any]:
        speedup = self.speedup
        return {
            "schema": SCHEMA_VERSION,
            "name": self.name,
            "quick": self.quick,
            "unix_time": time.time(),
            "optimized": self.optimized.to_json(),
            "reference": (self.reference.to_json()
                          if self.reference is not None else None),
            "speedup_events_per_s": (round(speedup, 3)
                                     if speedup is not None else None),
            "check": {"ran": self.check_ran, "passed": self.check_passed},
            "telemetry": (None if self.telemetry is None else {
                "wall_s": round(self.telemetry.wall_s, 6),
                "events_per_s": round(self.telemetry.events_per_s, 1),
                "overhead_pct": round(self.telemetry_overhead_pct, 2),
                "fingerprint_matches": self.telemetry_matches,
            }),
            "spans": (None if self.spans is None else {
                "wall_s": round(self.spans.wall_s, 6),
                "events_per_s": round(self.spans.events_per_s, 1),
                "overhead_pct": round(self.spans_overhead_pct, 2),
                "fingerprint_matches": self.spans_matches,
                "n_spans": self.spans_count,
            }),
        }


def fingerprint_digest(fingerprint: Any) -> str:
    """Stable digest of a scenario fingerprint for the JSON report."""
    return hashlib.sha256(repr(fingerprint).encode()).hexdigest()


def _timed(name: str, quick: bool, reference: bool) -> TimedRun:
    perfmode.set_reference(reference)
    try:
        # Keep collector pauses out of the measurement window; the
        # optimized path's whole point is allocation behaviour.
        gc.collect()
        start = time.perf_counter()
        result = run_scenario(name, quick=quick)
        wall = time.perf_counter() - start
    finally:
        perfmode.set_reference(False)
    return TimedRun("reference" if reference else "optimized", wall, result)


def _timed_telemetry(name: str, quick: bool,
                     probe_period: float = 0.25):
    """Time the optimized engine with a full telemetry bundle attached.

    Returns ``(TimedRun, Telemetry)`` — the bundle is handed back so the
    CLI can optionally export the captured trace/run log.  Gauge wiring
    and the bundle's construction happen inside the window on purpose:
    that setup is part of what observation costs.
    """
    from repro.obs.telemetry import Telemetry
    gc.collect()
    start = time.perf_counter()
    telemetry = Telemetry(probe_period=probe_period)
    result = run_scenario(name, quick=quick, telemetry=telemetry)
    wall = time.perf_counter() - start
    return TimedRun("telemetry", wall, result), telemetry


def _timed_spans(name: str, quick: bool, probe_period: float = 0.25):
    """Time the full explainer path: instrumented run + span assembly.

    The span tree and critical path are folded *inside* the window —
    this row answers "what does a ``repro explain`` cost end to end"
    and tracks the span recorder's events/s next to the raw engine's.
    Returns ``(TimedRun, n_spans)``.
    """
    from repro.obs.critpath import critical_path
    from repro.obs.spans import SpanRecorder
    from repro.obs.telemetry import Telemetry
    gc.collect()
    start = time.perf_counter()
    telemetry = Telemetry(probe_period=probe_period)
    result = run_scenario(name, quick=quick, telemetry=telemetry)
    rec = SpanRecorder.from_telemetry(telemetry)
    critical_path(rec)
    wall = time.perf_counter() - start
    return TimedRun("spans", wall, result), len(rec.spans)


def bench_scenario(name: str, quick: bool = False, baseline: bool = False,
                   check: bool = False, telemetry: bool = True,
                   capture_dir: Optional[str] = None) -> BenchReport:
    """Benchmark one scenario; optionally measure and verify the baseline.

    Unless disabled, a third timed run measures telemetry overhead and
    asserts the instrumented fingerprint matches the bare one.  With
    ``capture_dir``, that run's Chrome trace and run log are written to
    ``TRACE_<name>.json`` / ``LOG_<name>.jsonl`` there.
    """
    optimized = _timed(name, quick, reference=False)
    report = BenchReport(name=name, quick=quick, optimized=optimized)
    if baseline or check:
        report.reference = _timed(name, quick, reference=True)
        if check:
            report.check_ran = True
            report.check_passed = (
                optimized.result.fingerprint
                == report.reference.result.fingerprint)
    if telemetry:
        report.telemetry, bundle = _timed_telemetry(name, quick)
        report.telemetry_matches = (
            optimized.result.fingerprint
            == report.telemetry.result.fingerprint)
        if capture_dir is not None:
            from repro.obs.export import write_chrome_trace, write_runlog
            os.makedirs(capture_dir, exist_ok=True)
            bundle.meta.setdefault("job_name", f"bench:{name}")
            write_chrome_trace(
                os.path.join(capture_dir, f"TRACE_{name}.json"), bundle)
            write_runlog(
                os.path.join(capture_dir, f"LOG_{name}.jsonl"), bundle)
        report.spans, report.spans_count = _timed_spans(name, quick)
        report.spans_matches = (
            optimized.result.fingerprint == report.spans.result.fingerprint)
    return report


def profile_scenario(name: str, quick: bool = False, out_dir: str = ".",
                     top_n: int = 25) -> Dict[str, str]:
    """cProfile one optimized run; write pstats + a top-N JSON table.

    Two artifacts land in ``out_dir``: ``PROFILE_<name>.pstats`` (the
    full profile, for ``python -m pstats`` or snakeviz) and
    ``PROFILE_<name>.json`` — the ``top_n`` hottest functions by
    tottime, which diffs cleanly across commits and is what CI uploads.
    Runs single-process and separately from the timed runs: the
    profiler's tracing overhead must never contaminate the tracked
    events/s trajectory.
    """
    import cProfile
    gc.collect()
    prof = cProfile.Profile()
    prof.enable()
    try:
        run_scenario(name, quick=quick)
    finally:
        prof.disable()
    os.makedirs(out_dir, exist_ok=True)
    pstats_path = os.path.join(out_dir, f"PROFILE_{name}.pstats")
    prof.dump_stats(pstats_path)
    import pstats
    rows = []
    stats = pstats.Stats(prof)
    for (filename, line, func), (_cc, nc, tt, ct, _callers) in \
            stats.stats.items():
        rows.append({"file": filename, "line": line, "function": func,
                     "ncalls": nc, "tottime_s": round(tt, 6),
                     "cumtime_s": round(ct, 6)})
    rows.sort(key=lambda r: r["tottime_s"], reverse=True)
    json_path = os.path.join(out_dir, f"PROFILE_{name}.json")
    with open(json_path, "w") as fh:
        json.dump({"schema": 1, "name": name, "quick": quick,
                   "kernel_mode": kernel_mode(),
                   "sorted_by": "tottime_s", "top": rows[:top_n]},
                  fh, indent=2)
        fh.write("\n")
    return {"pstats": pstats_path, "json": json_path}


def load_compare(path: str) -> Dict[str, Dict[str, Any]]:
    """Read old ``BENCH_*.json`` report(s) for ``--compare``.

    Accepts either one report file or a directory of them; returns a
    ``{scenario_name: report_dict}`` map.  Any schema version works —
    only ``optimized.events_per_s`` is consulted.
    """
    paths = []
    if os.path.isdir(path):
        paths = [os.path.join(path, fn) for fn in sorted(os.listdir(path))
                 if fn.startswith("BENCH_") and fn.endswith(".json")]
    else:
        paths = [path]
    old: Dict[str, Dict[str, Any]] = {}
    for p in paths:
        with open(p) as fh:
            doc = json.load(fh)
        if isinstance(doc, dict) and "name" in doc and "optimized" in doc:
            old[doc["name"]] = doc
    return old


#: events/s drop (vs the --compare baseline) flagged as a regression.
REGRESSION_THRESHOLD_PCT = 5.0


def compare_line(report: BenchReport,
                 old: Dict[str, Any]) -> Optional[str]:
    """One ``--compare`` delta line for a scenario (None if no data)."""
    try:
        old_eps = float(old["optimized"]["events_per_s"])
    except (KeyError, TypeError, ValueError):
        return None
    if old_eps <= 0:
        return None
    new_eps = report.optimized.events_per_s
    delta_pct = (new_eps - old_eps) / old_eps * 100.0
    flag = ("  << REGRESSION"
            if delta_pct < -REGRESSION_THRESHOLD_PCT else "")
    return (f"  vs old: {old_eps:12,.0f} -> {new_eps:12,.0f} events/s "
            f"({delta_pct:+.1f}%){flag}")


def write_report(report: BenchReport, out_dir: str) -> str:
    os.makedirs(out_dir, exist_ok=True)
    path = os.path.join(out_dir, f"BENCH_{report.name}.json")
    with open(path, "w") as fh:
        json.dump(report.to_json(), fh, indent=2, sort_keys=True)
        fh.write("\n")
    return path


def run_bench(scenarios: Optional[List[str]] = None, quick: bool = False,
              baseline: bool = False, check: bool = False,
              out_dir: str = ".", jobs: int = 1,
              telemetry: bool = True,
              capture_dir: Optional[str] = None,
              profile: bool = False,
              compare: Optional[str] = None) -> List[BenchReport]:
    """Run the selected scenarios and write one ``BENCH_*.json`` each.

    ``jobs > 1`` fans scenarios out across a process pool (the same
    fan-out the experiment sweep runner uses).  Simulation results —
    and hence the ``--check`` identity verdicts — are unaffected, but
    the scenarios share the machine, so treat parallel wall-clock
    timings as smoke numbers, not the tracked perf trajectory.

    ``profile`` adds a cProfile'd extra run per scenario (sequential,
    in this process, after the timed run) writing ``PROFILE_<name>``
    artifacts next to the reports.  ``compare`` prints events/s deltas
    against old report(s) at that path, flagging >5 % drops.
    """
    names = scenarios if scenarios else list(SCENARIOS)
    old_reports = load_compare(compare) if compare else {}
    worker = functools.partial(bench_scenario, quick=quick,
                               baseline=baseline, check=check,
                               telemetry=telemetry, capture_dir=capture_dir)
    reports_out = map_parallel(worker, names, jobs=jobs)
    reports = []
    for name, report in zip(names, reports_out):
        path = write_report(report, out_dir)
        line = (f"{name:14s} optimized {report.optimized.events_per_s:12,.0f}"
                f" events/s ({report.optimized.wall_s:.3f}s wall)")
        if report.reference is not None:
            line += (f" | reference {report.reference.events_per_s:12,.0f}"
                     f" events/s ({report.reference.wall_s:.3f}s wall)"
                     f" | speedup {report.speedup:.2f}x")
        if report.check_ran:
            line += f" | check {'OK' if report.check_passed else 'FAILED'}"
        if report.telemetry is not None:
            match = "OK" if report.telemetry_matches else "DIVERGED"
            line += (f" | telemetry {report.telemetry_overhead_pct:+.1f}% "
                     f"({match})")
        if report.spans is not None:
            match = "OK" if report.spans_matches else "DIVERGED"
            line += (f" | spans {report.spans_overhead_pct:+.1f}% "
                     f"({match})")
        print(line)
        if name in old_reports:
            delta = compare_line(report, old_reports[name])
            if delta is not None:
                print(delta)
        print(f"  wrote {path}")
        if profile:
            artifacts = profile_scenario(name, quick=quick, out_dir=out_dir)
            print(f"  wrote {artifacts['pstats']} + {artifacts['json']}")
        reports.append(report)
    return reports


def main(args) -> int:
    """Entry point for ``repro bench`` (argparse namespace from the CLI)."""
    jobs = getattr(args, "jobs", 1)
    if jobs < 1:
        print(f"--jobs must be >= 1, got {jobs}")
        return 2
    compare = getattr(args, "compare", None)
    if compare and not os.path.exists(compare):
        print(f"--compare path does not exist: {compare}")
        return 2
    reports = run_bench(scenarios=args.scenario or None, quick=args.quick,
                        baseline=args.baseline, check=args.check,
                        out_dir=args.out_dir, jobs=jobs,
                        telemetry=not getattr(args, "no_telemetry", False),
                        capture_dir=getattr(args, "capture_dir", None),
                        profile=getattr(args, "profile", False),
                        compare=compare)
    if args.check and not all(r.check_passed for r in reports):
        failed = [r.name for r in reports if not r.check_passed]
        print(f"CHECK FAILED: optimized and reference engines diverged "
              f"on: {', '.join(failed)}")
        return 1
    bad = [r.name for r in reports
           if r.telemetry is not None and not r.telemetry_matches]
    if bad:
        print(f"TELEMETRY CHECK FAILED: instrumented runs diverged "
              f"on: {', '.join(bad)}")
        return 1
    bad = [r.name for r in reports
           if r.spans is not None and not r.spans_matches]
    if bad:
        print(f"SPANS CHECK FAILED: explained runs diverged "
              f"on: {', '.join(bad)}")
        return 1
    return 0
