"""Benchmark harness: timing, the ``BENCH_*.json`` schema, and --check.

The harness runs each scenario under the optimized engine and — for
``--baseline`` / ``--check`` — again under the retained reference paths
(:mod:`repro.sim.perfmode`), then writes one ``BENCH_<name>.json`` per
scenario in a stable schema so the repository's perf trajectory can
accumulate across commits (see DESIGN.md §8 for how to read it):

.. code-block:: json

    {
      "schema": 1,
      "name": "shuffle_wave",
      "quick": false,
      "unix_time": 1754000000.0,
      "optimized":  {"wall_s": ..., "events": ..., "events_per_s": ...,
                     "sim_time_s": ..., "metrics": {...},
                     "fingerprint_sha256": "..."},
      "reference":  {... same shape ...} ,
      "speedup_events_per_s": 3.4,
      "check": {"ran": true, "passed": true},
      "telemetry": {"wall_s": ..., "events_per_s": ...,
                    "overhead_pct": 2.1, "fingerprint_matches": true}
    }

``reference``/``speedup_events_per_s`` are ``null`` unless a baseline
was measured; ``check.passed`` asserts the two engine modes produced
**byte-identical** simulation results (same completion times, same
bytes completed), which is what makes the optimization provably
behavior-preserving rather than merely plausible.

``telemetry`` (schema 2) times the optimized engine a second time with
a full observation bundle attached — gauges wired, run-log sink
installed, probe sampling — so the tracked perf trajectory also records
what observation *costs* (``overhead_pct``, vs the bare optimized wall)
and re-asserts per commit that it costs nothing in *behavior*
(``fingerprint_matches``).
"""

from __future__ import annotations

import functools
import gc
import hashlib
import json
import os
import time
from dataclasses import dataclass
from typing import Any, Dict, List, Optional

from repro.bench.scenarios import SCENARIOS, ScenarioResult, run_scenario
from repro.experiments.runner import map_parallel
from repro.sim import perfmode

__all__ = ["BenchReport", "bench_scenario", "run_bench", "main"]

SCHEMA_VERSION = 2


@dataclass
class TimedRun:
    """One timed scenario execution in one engine mode."""

    mode: str
    wall_s: float
    result: ScenarioResult

    @property
    def events_per_s(self) -> float:
        return self.result.events / self.wall_s if self.wall_s > 0 else 0.0

    def to_json(self) -> Dict[str, Any]:
        return {
            "mode": self.mode,
            "wall_s": round(self.wall_s, 6),
            "events": self.result.events,
            "events_per_s": round(self.events_per_s, 1),
            "sim_time_s": self.result.sim_time,
            "metrics": self.result.metrics,
            "fingerprint_sha256": fingerprint_digest(
                self.result.fingerprint),
        }


@dataclass
class BenchReport:
    """Everything measured for one scenario."""

    name: str
    quick: bool
    optimized: TimedRun
    reference: Optional[TimedRun] = None
    check_ran: bool = False
    check_passed: Optional[bool] = None
    telemetry: Optional[TimedRun] = None
    telemetry_matches: Optional[bool] = None

    @property
    def speedup(self) -> Optional[float]:
        if self.reference is None or self.reference.events_per_s == 0:
            return None
        return self.optimized.events_per_s / self.reference.events_per_s

    @property
    def telemetry_overhead_pct(self) -> Optional[float]:
        if self.telemetry is None or self.optimized.wall_s <= 0:
            return None
        return (self.telemetry.wall_s - self.optimized.wall_s) \
            / self.optimized.wall_s * 100.0

    def to_json(self) -> Dict[str, Any]:
        speedup = self.speedup
        return {
            "schema": SCHEMA_VERSION,
            "name": self.name,
            "quick": self.quick,
            "unix_time": time.time(),
            "optimized": self.optimized.to_json(),
            "reference": (self.reference.to_json()
                          if self.reference is not None else None),
            "speedup_events_per_s": (round(speedup, 3)
                                     if speedup is not None else None),
            "check": {"ran": self.check_ran, "passed": self.check_passed},
            "telemetry": (None if self.telemetry is None else {
                "wall_s": round(self.telemetry.wall_s, 6),
                "events_per_s": round(self.telemetry.events_per_s, 1),
                "overhead_pct": round(self.telemetry_overhead_pct, 2),
                "fingerprint_matches": self.telemetry_matches,
            }),
        }


def fingerprint_digest(fingerprint: Any) -> str:
    """Stable digest of a scenario fingerprint for the JSON report."""
    return hashlib.sha256(repr(fingerprint).encode()).hexdigest()


def _timed(name: str, quick: bool, reference: bool) -> TimedRun:
    perfmode.set_reference(reference)
    try:
        # Keep collector pauses out of the measurement window; the
        # optimized path's whole point is allocation behaviour.
        gc.collect()
        start = time.perf_counter()
        result = run_scenario(name, quick=quick)
        wall = time.perf_counter() - start
    finally:
        perfmode.set_reference(False)
    return TimedRun("reference" if reference else "optimized", wall, result)


def _timed_telemetry(name: str, quick: bool,
                     probe_period: float = 0.25):
    """Time the optimized engine with a full telemetry bundle attached.

    Returns ``(TimedRun, Telemetry)`` — the bundle is handed back so the
    CLI can optionally export the captured trace/run log.  Gauge wiring
    and the bundle's construction happen inside the window on purpose:
    that setup is part of what observation costs.
    """
    from repro.obs.telemetry import Telemetry
    gc.collect()
    start = time.perf_counter()
    telemetry = Telemetry(probe_period=probe_period)
    result = run_scenario(name, quick=quick, telemetry=telemetry)
    wall = time.perf_counter() - start
    return TimedRun("telemetry", wall, result), telemetry


def bench_scenario(name: str, quick: bool = False, baseline: bool = False,
                   check: bool = False, telemetry: bool = True,
                   capture_dir: Optional[str] = None) -> BenchReport:
    """Benchmark one scenario; optionally measure and verify the baseline.

    Unless disabled, a third timed run measures telemetry overhead and
    asserts the instrumented fingerprint matches the bare one.  With
    ``capture_dir``, that run's Chrome trace and run log are written to
    ``TRACE_<name>.json`` / ``LOG_<name>.jsonl`` there.
    """
    optimized = _timed(name, quick, reference=False)
    report = BenchReport(name=name, quick=quick, optimized=optimized)
    if baseline or check:
        report.reference = _timed(name, quick, reference=True)
        if check:
            report.check_ran = True
            report.check_passed = (
                optimized.result.fingerprint
                == report.reference.result.fingerprint)
    if telemetry:
        report.telemetry, bundle = _timed_telemetry(name, quick)
        report.telemetry_matches = (
            optimized.result.fingerprint
            == report.telemetry.result.fingerprint)
        if capture_dir is not None:
            from repro.obs.export import write_chrome_trace, write_runlog
            os.makedirs(capture_dir, exist_ok=True)
            bundle.meta.setdefault("job_name", f"bench:{name}")
            write_chrome_trace(
                os.path.join(capture_dir, f"TRACE_{name}.json"), bundle)
            write_runlog(
                os.path.join(capture_dir, f"LOG_{name}.jsonl"), bundle)
    return report


def write_report(report: BenchReport, out_dir: str) -> str:
    os.makedirs(out_dir, exist_ok=True)
    path = os.path.join(out_dir, f"BENCH_{report.name}.json")
    with open(path, "w") as fh:
        json.dump(report.to_json(), fh, indent=2, sort_keys=True)
        fh.write("\n")
    return path


def run_bench(scenarios: Optional[List[str]] = None, quick: bool = False,
              baseline: bool = False, check: bool = False,
              out_dir: str = ".", jobs: int = 1,
              telemetry: bool = True,
              capture_dir: Optional[str] = None) -> List[BenchReport]:
    """Run the selected scenarios and write one ``BENCH_*.json`` each.

    ``jobs > 1`` fans scenarios out across a process pool (the same
    fan-out the experiment sweep runner uses).  Simulation results —
    and hence the ``--check`` identity verdicts — are unaffected, but
    the scenarios share the machine, so treat parallel wall-clock
    timings as smoke numbers, not the tracked perf trajectory.
    """
    names = scenarios if scenarios else list(SCENARIOS)
    worker = functools.partial(bench_scenario, quick=quick,
                               baseline=baseline, check=check,
                               telemetry=telemetry, capture_dir=capture_dir)
    reports_out = map_parallel(worker, names, jobs=jobs)
    reports = []
    for name, report in zip(names, reports_out):
        path = write_report(report, out_dir)
        line = (f"{name:14s} optimized {report.optimized.events_per_s:12,.0f}"
                f" events/s ({report.optimized.wall_s:.3f}s wall)")
        if report.reference is not None:
            line += (f" | reference {report.reference.events_per_s:12,.0f}"
                     f" events/s ({report.reference.wall_s:.3f}s wall)"
                     f" | speedup {report.speedup:.2f}x")
        if report.check_ran:
            line += f" | check {'OK' if report.check_passed else 'FAILED'}"
        if report.telemetry is not None:
            match = "OK" if report.telemetry_matches else "DIVERGED"
            line += (f" | telemetry {report.telemetry_overhead_pct:+.1f}% "
                     f"({match})")
        print(line)
        print(f"  wrote {path}")
        reports.append(report)
    return reports


def main(args) -> int:
    """Entry point for ``repro bench`` (argparse namespace from the CLI)."""
    jobs = getattr(args, "jobs", 1)
    if jobs < 1:
        print(f"--jobs must be >= 1, got {jobs}")
        return 2
    reports = run_bench(scenarios=args.scenario or None, quick=args.quick,
                        baseline=args.baseline, check=args.check,
                        out_dir=args.out_dir, jobs=jobs,
                        telemetry=not getattr(args, "no_telemetry", False),
                        capture_dir=getattr(args, "capture_dir", None))
    if args.check and not all(r.check_passed for r in reports):
        failed = [r.name for r in reports if not r.check_passed]
        print(f"CHECK FAILED: optimized and reference engines diverged "
              f"on: {', '.join(failed)}")
        return 1
    bad = [r.name for r in reports
           if r.telemetry is not None and not r.telemetry_matches]
    if bad:
        print(f"TELEMETRY CHECK FAILED: instrumented runs diverged "
              f"on: {', '.join(bad)}")
        return 1
    return 0
