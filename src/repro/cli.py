"""Top-level command-line interface.

Subcommands::

    python -m repro describe-cluster [--nodes N]
    python -m repro run --workload groupby --data-gb 40 [--nodes N]
        [--store ramdisk|ssd|lustre] [--elb] [--cad] [--delay-scheduling]
        [--speculation] [--failure-rate P] [--crash NODE@T[:RESTART_T]]...
        [--mem-frac F] [--mem-elastic]
        [--seed S] [--gantt] [--csv FILE] [--json FILE]
        [--trace-out TRACE.json] [--metrics-out RUNLOG.jsonl]
        [--probe-period S]
    python -m repro serve --arrival-rate R --jobs N
        [--tenants name[:weight[:quota]],...] [--policy fifo|fair]
        [--base-gb G] [--nodes N] [--seed S] [--handoff-delay S]
        [--elb] [--cad] [--mem-frac F] [--mem-elastic] [--json FILE]
        [--explain]
    python -m repro report RUNLOG.jsonl  (per-phase utilization summary)
    python -m repro explain [RUNLOG.jsonl]   (critical path + attribution
        + scheduler decision audit; without a runlog it simulates the
        job itself, taking the same flags as `run`)
    python -m repro bench [--quick] [--check] [--baseline]
        [--scenario NAME]... [--out-dir DIR] [--profile] [--compare OLD]
    python -m repro experiments ...      (alias of repro.experiments CLI)
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from repro.analysis.timeline import gantt, to_csv, to_json
from repro.cluster.spec import GB, MB, hyperion
from repro.cluster.variability import LognormalSpeed
from repro.core.engine import EngineOptions, run_job
from repro.core.faults import FaultPlan, NodeCrash
from repro.workloads import (
    grep_spec,
    groupby_spec,
    kmeans_spec,
    logistic_regression_spec,
    wordcount_spec,
)

__all__ = ["main"]

# Every factory takes (data_bytes, store) with store=None meaning "the
# workload's default"; a workload that shuffles threads the store into
# its spec, one that does not appears in NO_SHUFFLE_WORKLOADS and the
# CLI rejects an explicit --store for it instead of silently ignoring it.
WORKLOADS = {
    "groupby": lambda data, store: groupby_spec(
        data, shuffle_store=store if store is not None else "ramdisk",
        fetch_mode="network" if store != "lustre" else "lustre-local"),
    "grep": lambda data, store: grep_spec(data, shuffle_store=store),
    "lr": lambda data, store: logistic_regression_spec(data),
    "wordcount": lambda data, store: wordcount_spec(data,
                                                    shuffle_store=store),
    "kmeans": lambda data, store: kmeans_spec(data),
}

#: Workloads whose per-iteration aggregates stay in memory: there is no
#: materialised shuffle, so no storage device choice to make.
NO_SHUFFLE_WORKLOADS = frozenset({"lr", "kmeans"})


def _add_job_args(p: argparse.ArgumentParser) -> None:
    """The job-shape flags shared by ``run`` and ``explain``."""
    p.add_argument("--workload", choices=sorted(WORKLOADS),
                   default="groupby")
    p.add_argument("--data-gb", type=float, default=40.0)
    p.add_argument("--nodes", type=int, default=8)
    p.add_argument("--store", choices=["ramdisk", "ssd", "lustre"],
                   default=None,
                   help="shuffle storage device (default: the "
                        "workload's own; rejected for workloads "
                        "without a shuffle)")
    p.add_argument("--elb", action="store_true")
    p.add_argument("--cad", action="store_true")
    p.add_argument("--delay-scheduling", action="store_true")
    p.add_argument("--speculation", action="store_true")
    p.add_argument("--failure-rate", type=float, default=0.0)
    p.add_argument("--crash", action="append", default=[],
                   metavar="NODE@T[:RESTART_T]",
                   help="crash NODE at sim time T, optionally restarting "
                        "it (empty) at RESTART_T; repeatable")
    p.add_argument("--mem-frac", type=float, default=None,
                   help="manage executor memory at this fraction of the "
                        "node's Spark heap (0 < f <= 1; shrunk heaps "
                        "spill); default: memory unmanaged")
    p.add_argument("--mem-elastic", action="store_true",
                   help="with managed memory, launch tasks shrunk "
                        "instead of declining offers (implies "
                        "--mem-frac 1.0 unless given)")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--speed-sigma", type=float, default=0.18)


def _job_config(args):
    """Validate the shared job flags and build ``(spec, options)``."""
    if args.store is not None and args.workload in NO_SHUFFLE_WORKLOADS:
        raise SystemExit(
            f"--store {args.store} has no effect on --workload "
            f"{args.workload}: it keeps its per-iteration aggregates in "
            f"memory and never materialises shuffle data; drop --store or "
            f"pick a shuffling workload (groupby, grep, wordcount)")
    if not 0.0 <= args.failure_rate <= 1.0:
        raise SystemExit(
            f"--failure-rate must be within [0, 1], got {args.failure_rate}")
    if args.nodes <= 0:
        raise SystemExit(
            f"--nodes must be a positive node count, got {args.nodes}")
    if args.data_gb <= 0:
        raise SystemExit(
            f"--data-gb must be a positive data size in GB, "
            f"got {args.data_gb}")
    spec = WORKLOADS[args.workload](args.data_gb * GB, args.store)
    options = EngineOptions(
        delay_scheduling=args.delay_scheduling, elb=args.elb, cad=args.cad,
        speculation=args.speculation, task_failure_rate=args.failure_rate,
        seed=args.seed, fault_plan=_parse_crashes(args.crash),
        memory=_memory_config(args))
    return spec, options


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Memory-resident MapReduce on HPC systems (IPDPS'14 "
                    "reproduction)")
    sub = parser.add_subparsers(dest="command", required=True)

    desc = sub.add_parser("describe-cluster",
                          help="print the simulated testbed's spec")
    desc.add_argument("--nodes", type=int, default=100)

    run = sub.add_parser("run", help="simulate one job")
    _add_job_args(run)
    run.add_argument("--gantt", action="store_true",
                     help="render an ASCII task timeline")
    run.add_argument("--csv", metavar="FILE",
                     help="write the task trace as CSV")
    run.add_argument("--json", metavar="FILE",
                     help="write full job metrics as JSON")
    run.add_argument("--trace-out", metavar="FILE",
                     help="write a Chrome trace-event JSON (load in "
                          "Perfetto / chrome://tracing)")
    run.add_argument("--metrics-out", metavar="FILE",
                     help="write the JSONL structured run log "
                          "(events + sampled metric series)")
    run.add_argument("--probe-period", type=float, default=0.25,
                     help="gauge sampling period in sim seconds "
                          "(default: 0.25)")

    serve = sub.add_parser(
        "serve", help="run a continuous multi-tenant job stream on one "
                      "warm cluster")
    serve.add_argument("--arrival-rate", type=float, default=0.05,
                       help="aggregate job arrivals per sim second, split "
                            "evenly across tenants (default: 0.05)")
    serve.add_argument("--jobs", type=int, default=20,
                       help="total jobs to run (default: 20)")
    serve.add_argument("--tenants", default="etl:2,adhoc:1",
                       help="comma-separated name[:weight[:quota]] specs "
                            "(default: etl:2,adhoc:1)")
    serve.add_argument("--policy", choices=["fifo", "fair"], default="fifo",
                       help="inter-job scheduler (default: fifo)")
    serve.add_argument("--base-gb", type=float, default=8.0,
                       help="base data scale; each job draws a multiplier "
                            "on this (default: 8)")
    serve.add_argument("--nodes", type=int, default=8)
    serve.add_argument("--seed", type=int, default=0)
    serve.add_argument("--handoff-delay", type=float, default=0.5,
                       help="executor-handoff delay in sim seconds when a "
                            "core moves between jobs (default: 0.5)")
    serve.add_argument("--elb", action="store_true",
                       help="enable ELB inside every job")
    serve.add_argument("--cad", action="store_true",
                       help="enable CAD inside every job")
    serve.add_argument("--mem-frac", type=float, default=None,
                       help="share one managed executor-heap pool (this "
                            "fraction of each node's Spark heap) across "
                            "all concurrent jobs; default: unmanaged")
    serve.add_argument("--mem-elastic", action="store_true",
                       help="with managed memory, launch tasks shrunk "
                            "instead of declining offers")
    serve.add_argument("--json", metavar="FILE",
                       help="write the full stream result as JSON")
    serve.add_argument("--explain", action="store_true",
                       help="also print per-tenant time attribution "
                            "(wait vs. service) and the scheduler "
                            "decision audit")

    report = sub.add_parser(
        "report", help="summarize a run log written by --metrics-out")
    report.add_argument("runlog", metavar="RUNLOG.jsonl")

    explain = sub.add_parser(
        "explain", help="critical path, time attribution, and scheduler "
                        "decision audit for one run")
    explain.add_argument("runlog", nargs="?", metavar="RUNLOG.jsonl",
                         help="explain an existing run log (written by "
                              "run --metrics-out); omitted: simulate the "
                              "job described by the flags below")
    _add_job_args(explain)
    explain.add_argument("--probe-period", type=float, default=0.25,
                         help="gauge sampling period in sim seconds "
                              "(default: 0.25)")
    explain.add_argument("--segments", type=int, default=40,
                         help="critical-path segments to print before "
                              "eliding (default: 40)")
    explain.add_argument("--json", metavar="FILE",
                         help="also write full job metrics as JSON "
                              "(run mode only; byte-identical to "
                              "`run --json` for the same flags)")

    bench = sub.add_parser(
        "bench", help="run the tracked perf benchmarks (BENCH_*.json)")
    bench.add_argument("--quick", action="store_true",
                       help="small scenario sizes (CI smoke)")
    bench.add_argument("--check", action="store_true",
                       help="also run the retained reference engine and "
                            "assert byte-identical simulation results")
    bench.add_argument("--baseline", action="store_true",
                       help="also time the reference engine (speedup "
                            "column) without the identity check")
    bench.add_argument("--scenario", action="append", default=[],
                       metavar="NAME",
                       help="run only this scenario (repeatable); "
                            "default: all")
    bench.add_argument("--out-dir", default=".",
                       help="directory for BENCH_<name>.json (default: .)")
    bench.add_argument("--jobs", "-j", type=int, default=1,
                       help="run scenarios in parallel worker processes; "
                            "results stay identical but wall-clock "
                            "timings share the machine (default: 1)")
    bench.add_argument("--no-telemetry", action="store_true",
                       help="skip the instrumented third run (telemetry "
                            "overhead + fingerprint-match columns)")
    bench.add_argument("--capture-dir", default=None, metavar="DIR",
                       help="also export each scenario's instrumented run "
                            "as TRACE_<name>.json + LOG_<name>.jsonl here")
    bench.add_argument("--profile", action="store_true",
                       help="also cProfile one extra optimized run per "
                            "scenario, writing PROFILE_<name>.pstats + a "
                            "top-N JSON hot-function table to --out-dir")
    bench.add_argument("--compare", default=None, metavar="OLD",
                       help="print events/s deltas against a previous "
                            "BENCH_<name>.json (or a directory of them); "
                            ">5%% drops are flagged REGRESSION "
                            "(informational, never changes the exit code)")

    sub.add_parser("experiments",
                   help="regenerate paper tables/figures "
                        "(alias of python -m repro.experiments)",
                   add_help=False)
    if argv is None:
        argv = sys.argv[1:]
    argv = list(argv)
    if argv[:1] == ["experiments"]:
        from repro.experiments.__main__ import main as experiments_main
        return experiments_main(argv[1:])

    args = parser.parse_args(argv)
    if args.command == "describe-cluster":
        return _describe(args)
    if args.command == "bench":
        from repro.bench import main as bench_main
        return bench_main(args)
    if args.command == "report":
        return _report(args)
    if args.command == "explain":
        return _explain(args)
    if args.command == "serve":
        return _serve(args)
    return _run(args)


def _describe(args) -> int:
    if args.nodes <= 0:
        raise SystemExit(
            f"--nodes must be a positive node count, got {args.nodes}")
    spec = hyperion(args.nodes)
    node = spec.node
    print(f"cluster: {spec.n_nodes} nodes "
          f"({spec.n_nodes * node.cores} cores)")
    print(f"  node: {node.cores} cores, {node.ram_bytes / GB:.0f} GB RAM "
          f"({node.spark_mem_bytes / GB:.0f} GB Spark, "
          f"{node.ramdisk_bytes / GB:.0f} GB RAMDisk)")
    print(f"  ramdisk: {node.ramdisk_read_bw / GB:.1f}/"
          f"{node.ramdisk_write_bw / GB:.1f} GB/s r/w, "
          f"{node.ramdisk_usable_bytes / GB:.0f} GB usable")
    print(f"  ssd: {node.ssd_bytes / GB:.0f} GB, "
          f"{node.ssd_read_bw / MB:.0f}/{node.ssd_write_bw / MB:.0f} "
          f"MB/s r/w, clean pool {node.ssd_clean_pool_bytes / GB:.0f} GB")
    print(f"  page cache: {node.page_cache_bytes / GB:.0f} GB "
          f"(dirty limit {node.page_cache_dirty_bytes / GB:.0f} GB)")
    print(f"  nic: {spec.nic_bw / GB:.1f} GB/s full duplex")
    print(f"  lustre: {spec.lustre_aggregate_bw / GB:.1f} GB/s aggregate, "
          f"{spec.lustre_n_oss} OSSes, "
          f"{spec.lustre_mds_ops_per_s:.0f} MDS ops/s")
    return 0


def _memory_config(args):
    """``--mem-frac`` / ``--mem-elastic`` → a MemoryConfig (or None)."""
    if args.mem_frac is None and not args.mem_elastic:
        return None
    from repro.core.memory import MemoryConfig
    frac = args.mem_frac if args.mem_frac is not None else 1.0
    if not 0.0 < frac <= 1.0:
        raise SystemExit(
            f"--mem-frac must be in (0, 1], got {frac:g}")
    return MemoryConfig(mem_frac=frac, elastic=args.mem_elastic)


def _parse_crashes(specs: Sequence[str]) -> Optional[FaultPlan]:
    """``NODE@T`` or ``NODE@T:RESTART_T`` → a :class:`FaultPlan`.

    ``NODE@T:`` (empty restart) means the node never rejoins.  A plan
    that restarts a node before (or at) its own crash, or crashes it at
    a negative time, is contradictory and rejected here with a pointed
    message rather than left to surface as an engine error mid-run.
    """
    if not specs:
        return None
    crashes = []
    for raw in specs:
        try:
            node_part, times = raw.split("@", 1)
            at_part, _, restart_part = times.partition(":")
            node = int(node_part)
            at = float(at_part)
            restart_at = float(restart_part) if restart_part else None
        except ValueError as exc:
            raise SystemExit(
                f"bad --crash {raw!r} (expected NODE@T[:RESTART_T]): {exc}")
        if node < 0:
            raise SystemExit(
                f"bad --crash {raw!r}: node must be >= 0, got {node}")
        if at < 0:
            raise SystemExit(
                f"bad --crash {raw!r}: crash time must be >= 0, got {at:g}")
        if restart_at is not None and restart_at <= at:
            raise SystemExit(
                f"bad --crash {raw!r}: restart time {restart_at:g} must be "
                f"strictly after the crash time {at:g}")
        crashes.append(NodeCrash(at=at, node=node, restart_at=restart_at))
    return FaultPlan(tuple(crashes))


def _serve(args) -> int:
    from repro.serve import StreamServer, parse_tenants
    if args.arrival_rate <= 0:
        raise SystemExit(
            f"--arrival-rate must be > 0 jobs/s, got {args.arrival_rate}")
    if args.jobs < 1:
        raise SystemExit(f"--jobs must be >= 1, got {args.jobs}")
    if args.base_gb <= 0:
        raise SystemExit(f"--base-gb must be > 0, got {args.base_gb}")
    if args.nodes <= 0:
        raise SystemExit(
            f"--nodes must be a positive node count, got {args.nodes}")
    if args.handoff_delay < 0:
        raise SystemExit(
            f"--handoff-delay must be >= 0, got {args.handoff_delay}")
    try:
        tenants = parse_tenants(
            [t for t in args.tenants.split(",") if t])
    except ValueError as exc:
        raise SystemExit(f"bad --tenants: {exc}")
    telemetry = None
    if args.explain:
        from repro.obs.telemetry import Telemetry
        telemetry = Telemetry()
    server = StreamServer(
        tenants, arrival_rate=args.arrival_rate, n_jobs=args.jobs,
        policy=args.policy, base_gb=args.base_gb, seed=args.seed,
        moving_delay=args.handoff_delay,
        cluster_spec=hyperion(args.nodes),
        options=EngineOptions(elb=args.elb, cad=args.cad,
                              memory=_memory_config(args)),
        telemetry=telemetry)
    result = server.run()
    print("\n".join(result.summary_lines()))
    if telemetry is not None:
        from repro.obs.audit import audit_lines, build_audit
        telemetry.finish()
        print()
        print("\n".join(_tenant_attribution_lines(result)))
        print("\n".join(audit_lines(build_audit(telemetry.events))))
    if args.json:
        with open(args.json, "w") as fh:
            fh.write(result.to_json())
        print(f"wrote stream result: {args.json}")
    return 0


def _tenant_attribution_lines(result) -> list:
    """Per-tenant sojourn decomposition: where each tenant's latency
    went (queue wait vs. service), and who is slowed down the most."""
    lines = ["tenant attribution (latency = wait + service):"]
    worst = None
    for tenant in result.tenants():
        outs = [o for o in result.outcomes if o.tenant == tenant]
        n = len(outs)
        wait = sum(o.first_grant_at - o.arrived_at for o in outs) / n
        service = sum(o.service for o in outs) / n
        slowdown = sum(o.slowdown for o in outs) / n
        lines.append(f"  {tenant:<10s} jobs={n:<4d} "
                     f"wait_mean={wait:9.3f}s "
                     f"service_mean={service:9.3f}s "
                     f"slowdown_mean={slowdown:6.2f}x")
        if worst is None or slowdown > worst[1]:
            worst = (tenant, slowdown, wait, service)
    if worst is not None:
        tenant, slowdown, wait, service = worst
        total = wait + service
        share = 100.0 * wait / total if total > 0 else 0.0
        lines.append(f"slowest tenant: {tenant} "
                     f"(slowdown {slowdown:.2f}x; {share:.1f}% of its "
                     f"sojourn spent queueing for slots)")
    return lines


def _run(args) -> int:
    spec, options = _job_config(args)
    telemetry = None
    if args.trace_out or args.metrics_out:
        from repro.obs.telemetry import Telemetry
        if args.probe_period <= 0:
            raise SystemExit(
                f"--probe-period must be positive, got {args.probe_period}")
        telemetry = Telemetry(probe_period=args.probe_period)
    result = run_job(spec, cluster_spec=hyperion(args.nodes),
                     options=options,
                     speed_model=LognormalSpeed(sigma=args.speed_sigma),
                     telemetry=telemetry)
    print(result.summary())
    if args.gantt:
        print()
        print(gantt(result))
    if args.csv:
        with open(args.csv, "w") as fh:
            fh.write(to_csv(result))
        print(f"wrote task trace: {args.csv}")
    if args.json:
        with open(args.json, "w") as fh:
            fh.write(to_json(result))
        print(f"wrote job metrics: {args.json}")
    if args.trace_out:
        from repro.obs.export import write_chrome_trace
        write_chrome_trace(args.trace_out, telemetry)
        print(f"wrote Chrome trace: {args.trace_out} "
              f"(open in https://ui.perfetto.dev)")
    if args.metrics_out:
        from repro.obs.export import write_runlog
        write_runlog(args.metrics_out, telemetry)
        print(f"wrote run log: {args.metrics_out} "
              f"({len(telemetry.events)} events, "
              f"{telemetry.probe.samples_taken} samples)")
    return 0


def _report(args) -> int:
    from repro.analysis.timeline import phase_report
    from repro.obs.runlog import load_runlog
    log = load_runlog(args.runlog)
    print(phase_report(log))
    return 0


def _explain(args) -> int:
    from repro.obs.audit import audit_lines, build_audit
    from repro.obs.critpath import explain_lines
    from repro.obs.spans import SpanRecorder
    if args.segments < 1:
        raise SystemExit(
            f"--segments must be >= 1, got {args.segments}")
    if args.runlog is not None:
        # Post-mortem mode: everything comes from the structured run log.
        if args.json:
            raise SystemExit(
                "--json needs a fresh simulation; drop the RUNLOG "
                "argument to run one")
        from repro.obs.runlog import load_runlog
        log = load_runlog(args.runlog)
        rec = SpanRecorder.from_runlog(log)
        records = build_audit(log.events)
        meta = log.meta
    else:
        # Run mode: simulate the job under telemetry.  The trace sink is
        # observation-only, so the result (and `--json`) is
        # byte-identical to a telemetry-off `repro run` (CI asserts it).
        from repro.obs.telemetry import Telemetry
        spec, options = _job_config(args)
        if args.probe_period <= 0:
            raise SystemExit(
                f"--probe-period must be positive, got {args.probe_period}")
        telemetry = Telemetry(probe_period=args.probe_period)
        result = run_job(spec, cluster_spec=hyperion(args.nodes),
                         options=options,
                         speed_model=LognormalSpeed(sigma=args.speed_sigma),
                         telemetry=telemetry)
        rec = SpanRecorder.from_telemetry(telemetry)
        records = build_audit(telemetry.events)
        meta = telemetry.meta
        if args.json:
            with open(args.json, "w") as fh:
                fh.write(to_json(result))
    lines = explain_lines(rec, meta, max_segments=args.segments)
    lines.append("")
    lines.extend(audit_lines(records))
    print("\n".join(lines))
    if args.runlog is None and args.json:
        print(f"wrote job metrics: {args.json}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
