"""Top-level command-line interface.

Subcommands::

    python -m repro describe-cluster [--nodes N]
    python -m repro run --workload groupby --data-gb 40 [--nodes N]
        [--store ramdisk|ssd|lustre] [--elb] [--cad] [--delay-scheduling]
        [--speculation] [--failure-rate P] [--crash NODE@T[:RESTART_T]]...
        [--seed S] [--gantt] [--csv FILE] [--json FILE]
    python -m repro bench [--quick] [--check] [--baseline]
        [--scenario NAME]... [--out-dir DIR]
    python -m repro experiments ...      (alias of repro.experiments CLI)
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from repro.analysis.timeline import gantt, to_csv, to_json
from repro.cluster.spec import GB, MB, hyperion
from repro.cluster.variability import LognormalSpeed
from repro.core.engine import EngineOptions, run_job
from repro.core.faults import FaultPlan, NodeCrash
from repro.workloads import (
    grep_spec,
    groupby_spec,
    kmeans_spec,
    logistic_regression_spec,
    wordcount_spec,
)

__all__ = ["main"]

WORKLOADS = {
    "groupby": lambda data, store: groupby_spec(data, shuffle_store=store),
    "grep": lambda data, store: grep_spec(data),
    "lr": lambda data, store: logistic_regression_spec(data),
    "wordcount": lambda data, store: wordcount_spec(data),
    "kmeans": lambda data, store: kmeans_spec(data),
}


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Memory-resident MapReduce on HPC systems (IPDPS'14 "
                    "reproduction)")
    sub = parser.add_subparsers(dest="command", required=True)

    desc = sub.add_parser("describe-cluster",
                          help="print the simulated testbed's spec")
    desc.add_argument("--nodes", type=int, default=100)

    run = sub.add_parser("run", help="simulate one job")
    run.add_argument("--workload", choices=sorted(WORKLOADS),
                     default="groupby")
    run.add_argument("--data-gb", type=float, default=40.0)
    run.add_argument("--nodes", type=int, default=8)
    run.add_argument("--store", choices=["ramdisk", "ssd", "lustre"],
                     default="ramdisk")
    run.add_argument("--elb", action="store_true")
    run.add_argument("--cad", action="store_true")
    run.add_argument("--delay-scheduling", action="store_true")
    run.add_argument("--speculation", action="store_true")
    run.add_argument("--failure-rate", type=float, default=0.0)
    run.add_argument("--crash", action="append", default=[],
                     metavar="NODE@T[:RESTART_T]",
                     help="crash NODE at sim time T, optionally restarting "
                          "it (empty) at RESTART_T; repeatable")
    run.add_argument("--seed", type=int, default=0)
    run.add_argument("--speed-sigma", type=float, default=0.18)
    run.add_argument("--gantt", action="store_true",
                     help="render an ASCII task timeline")
    run.add_argument("--csv", metavar="FILE",
                     help="write the task trace as CSV")
    run.add_argument("--json", metavar="FILE",
                     help="write full job metrics as JSON")

    bench = sub.add_parser(
        "bench", help="run the tracked perf benchmarks (BENCH_*.json)")
    bench.add_argument("--quick", action="store_true",
                       help="small scenario sizes (CI smoke)")
    bench.add_argument("--check", action="store_true",
                       help="also run the retained reference engine and "
                            "assert byte-identical simulation results")
    bench.add_argument("--baseline", action="store_true",
                       help="also time the reference engine (speedup "
                            "column) without the identity check")
    bench.add_argument("--scenario", action="append", default=[],
                       metavar="NAME",
                       help="run only this scenario (repeatable); "
                            "default: all")
    bench.add_argument("--out-dir", default=".",
                       help="directory for BENCH_<name>.json (default: .)")

    args = parser.parse_args(argv)
    if args.command == "describe-cluster":
        return _describe(args)
    if args.command == "bench":
        from repro.bench import main as bench_main
        return bench_main(args)
    return _run(args)


def _describe(args) -> int:
    spec = hyperion(args.nodes)
    node = spec.node
    print(f"cluster: {spec.n_nodes} nodes "
          f"({spec.n_nodes * node.cores} cores)")
    print(f"  node: {node.cores} cores, {node.ram_bytes / GB:.0f} GB RAM "
          f"({node.spark_mem_bytes / GB:.0f} GB Spark, "
          f"{node.ramdisk_bytes / GB:.0f} GB RAMDisk)")
    print(f"  ramdisk: {node.ramdisk_read_bw / GB:.1f}/"
          f"{node.ramdisk_write_bw / GB:.1f} GB/s r/w, "
          f"{node.ramdisk_usable_bytes / GB:.0f} GB usable")
    print(f"  ssd: {node.ssd_bytes / GB:.0f} GB, "
          f"{node.ssd_read_bw / MB:.0f}/{node.ssd_write_bw / MB:.0f} "
          f"MB/s r/w, clean pool {node.ssd_clean_pool_bytes / GB:.0f} GB")
    print(f"  page cache: {node.page_cache_bytes / GB:.0f} GB "
          f"(dirty limit {node.page_cache_dirty_bytes / GB:.0f} GB)")
    print(f"  nic: {spec.nic_bw / GB:.1f} GB/s full duplex")
    print(f"  lustre: {spec.lustre_aggregate_bw / GB:.1f} GB/s aggregate, "
          f"{spec.lustre_n_oss} OSSes, "
          f"{spec.lustre_mds_ops_per_s:.0f} MDS ops/s")
    return 0


def _parse_crashes(specs: Sequence[str]) -> Optional[FaultPlan]:
    """``NODE@T`` or ``NODE@T:RESTART_T`` → a :class:`FaultPlan`."""
    if not specs:
        return None
    crashes = []
    for raw in specs:
        try:
            node_part, times = raw.split("@", 1)
            at_part, _, restart_part = times.partition(":")
            crashes.append(NodeCrash(
                at=float(at_part), node=int(node_part),
                restart_at=float(restart_part) if restart_part else None))
        except ValueError as exc:
            raise SystemExit(
                f"bad --crash {raw!r} (expected NODE@T[:RESTART_T]): {exc}")
    return FaultPlan(tuple(crashes))


def _run(args) -> int:
    spec = WORKLOADS[args.workload](args.data_gb * GB, args.store)
    options = EngineOptions(
        delay_scheduling=args.delay_scheduling, elb=args.elb, cad=args.cad,
        speculation=args.speculation, task_failure_rate=args.failure_rate,
        seed=args.seed, fault_plan=_parse_crashes(args.crash))
    result = run_job(spec, cluster_spec=hyperion(args.nodes),
                     options=options,
                     speed_model=LognormalSpeed(sigma=args.speed_sigma))
    print(result.summary())
    if args.gantt:
        print()
        print(gantt(result))
    if args.csv:
        with open(args.csv, "w") as fh:
            fh.write(to_csv(result))
        print(f"wrote task trace: {args.csv}")
    if args.json:
        with open(args.json, "w") as fh:
            fh.write(to_json(result))
        print(f"wrote job metrics: {args.json}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
