"""The paper's three benchmarks (§III-B): GroupBy, Grep, Logistic Regression.

Each module provides (a) a :class:`~repro.core.jobspec.JobSpec` factory
parameterised the way the paper sweeps it, and (b) a *real* implementation
on the local RDD backend so the programming model is exercised end to end.
"""

from repro.workloads.groupby import groupby_spec, run_groupby_local
from repro.workloads.grep import grep_spec, run_grep_local
from repro.workloads.logreg import (
    logistic_regression_spec,
    run_logistic_regression_local,
)
from repro.workloads.wordcount import run_wordcount_local, wordcount_spec
from repro.workloads.kmeans import kmeans_spec, run_kmeans_local
from repro.workloads.datagen import (
    generate_kv_pairs,
    generate_labelled_points,
    generate_text_corpus,
)

__all__ = [
    "generate_kv_pairs",
    "generate_labelled_points",
    "generate_text_corpus",
    "grep_spec",
    "groupby_spec",
    "kmeans_spec",
    "logistic_regression_spec",
    "run_grep_local",
    "run_groupby_local",
    "run_kmeans_local",
    "run_logistic_regression_local",
    "run_wordcount_local",
    "wordcount_spec",
]
