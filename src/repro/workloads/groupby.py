"""GroupBy — the paper's shuffle-heavy benchmark (§III-B, Fig 4(a)).

Three stages: a computation stage generating key/value pairs in memory, a
storing stage (ShuffleMapTasks partition and materialise the intermediate
data), and a fetching stage shuffling it over the network.  Its defining
property: **intermediate data size equals input size**, which makes it
the probe for every storage/shuffle experiment (Figs 7, 8, 12, 13, 14).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.core.jobspec import JobSpec
from repro.core.local import LocalContext

GB = 1024.0 ** 3
MB = 1024.0 ** 2

__all__ = ["groupby_spec", "run_groupby_local"]


def groupby_spec(data_bytes: float,
                 split_bytes: float = 256 * MB,
                 shuffle_store: str = "ramdisk",
                 fetch_mode: str = "network",
                 n_reducers: Optional[int] = None,
                 generate_rate: float = 350 * MB,
                 reduce_rate: float = 1.5 * GB,
                 combiner: bool = False,
                 key_skew: float = 0.0,
                 n_keys: int = 1 << 20,
                 pair_bytes: float = 100.0) -> JobSpec:
    """The simulated GroupBy job.

    ``data_bytes`` is both input and intermediate volume (ratio 1.0).
    The paper sweeps it from 100 GB to 1.5 TB and varies where the
    intermediate data lives (``shuffle_store`` / ``fetch_mode``).

    ``combiner=True`` merges each node's pairs before the storing stage;
    the shuffle volume then follows the expected distinct-key count of
    the ``(key_skew, n_keys, pair_bytes)`` distribution — the same knobs
    ``datagen.generate_kv_pairs`` draws real pairs from — instead of the
    raw 1:1 ratio.
    """
    return JobSpec(
        name="GroupBy",
        input_bytes=data_bytes,
        split_bytes=split_bytes,
        map_compute_rate=generate_rate,
        reduce_compute_rate=reduce_rate,
        intermediate_ratio=1.0,
        input_source="generated",
        shuffle_store=shuffle_store,
        fetch_mode=fetch_mode,
        n_reducers=n_reducers,
        store_noise_sigma=0.10,
        combiner=combiner,
        key_skew=key_skew,
        n_keys=n_keys,
        pair_bytes=pair_bytes,
    )


def run_groupby_local(pairs: List[Tuple[int, int]],
                      ctx: Optional[LocalContext] = None,
                      num_partitions: Optional[int] = None
                      ) -> Dict[int, List[int]]:
    """Really group key/value pairs with the RDD API."""
    ctx = ctx if ctx is not None else LocalContext(parallelism=4)
    grouped = (ctx.parallelize(pairs)
               .group_by_key(num_partitions)
               .collect())
    return {k: sorted(vs) for k, vs in grouped}
