"""WordCount — the canonical GroupBy-family workload.

The paper (§III-B) motivates GroupBy as the core of "many applications
including kMeans, wordcount and calculating transitive closure of a
graph".  WordCount is provided both as a real RDD program and as a
simulation spec: like GroupBy it shuffles every record, but map-side
combining shrinks the intermediate volume considerably (a knob the
`intermediate_ratio` expresses).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.core.jobspec import JobSpec
from repro.core.local import LocalContext

GB = 1024.0 ** 3
MB = 1024.0 ** 2

__all__ = ["wordcount_spec", "run_wordcount_local"]


def wordcount_spec(input_bytes: float,
                   split_bytes: float = 128 * MB,
                   input_source: str = "hdfs",
                   combine_ratio: float = 0.15,
                   scan_rate: float = 180 * MB,
                   n_reducers: Optional[int] = None,
                   shuffle_store: Optional[str] = None,
                   combiner: bool = False,
                   key_skew: float = 0.2,
                   n_keys: int = 60_000,
                   pair_bytes: float = 12.0) -> JobSpec:
    """Simulated WordCount.

    ``combine_ratio`` is the hand-tuned shuffle volume relative to input
    after map-side combining (word frequencies follow a Zipf law, so
    combining is very effective on natural text).  ``combiner=True``
    replaces that fixed ratio with the engine's in-node combiner: the
    map stage emits the *raw* pair stream (ratio 1.0) and the reduction
    is derived from the vocabulary model — ``n_keys`` distinct words,
    Zipf-ish frequencies (``key_skew``), ~``pair_bytes`` per ``(word,
    1)`` record.  ``shuffle_store=None`` picks the configuration's
    natural device; pass ``"ramdisk"``/``"ssd"``/``"lustre"`` to pin it.
    """
    if not 0 < combine_ratio <= 1:
        raise ValueError("combine_ratio must be in (0, 1]")
    if shuffle_store is None:
        shuffle_store = "ramdisk" if input_source != "lustre" else "lustre"
    return JobSpec(
        name="WordCount",
        input_bytes=input_bytes,
        split_bytes=split_bytes,
        map_compute_rate=scan_rate,
        intermediate_ratio=1.0 if combiner else combine_ratio,
        input_source=input_source,
        shuffle_store=shuffle_store,
        fetch_mode="network" if shuffle_store != "lustre"
        else "lustre-local",
        n_reducers=n_reducers,
        hdfs_placement="skewed",          # text corpus, like Grep
        compute_noise_sigma=0.25,
        combiner=combiner,
        key_skew=key_skew,
        n_keys=n_keys,
        pair_bytes=pair_bytes,
    )


def run_wordcount_local(lines: List[str],
                        ctx: Optional[LocalContext] = None,
                        num_partitions: Optional[int] = None
                        ) -> Dict[str, int]:
    """Really count words with the RDD API (with map-side combining via
    reduceByKey, exactly as Spark's canonical example)."""
    ctx = ctx if ctx is not None else LocalContext(parallelism=4)
    return dict(ctx.parallelize(lines)
                .flat_map(str.split)
                .map(lambda w: (w, 1))
                .reduce_by_key(lambda a, b: a + b, num_partitions)
                .collect())
