"""Grep — the paper's scan-dominated benchmark (§III-B, Fig 4(b)).

Searches documents for a regular expression: very low computation per
byte, intermediate data of only 1–200 MB, which makes its performance a
direct probe of the *input* storage architecture (Fig 5(a), Fig 9(a)).
"""

from __future__ import annotations

import re
from typing import List, Optional

from repro.core.jobspec import JobSpec
from repro.core.local import LocalContext

GB = 1024.0 ** 3
MB = 1024.0 ** 2

__all__ = ["grep_spec", "run_grep_local"]


def grep_spec(input_bytes: float,
              split_bytes: float = 32 * MB,
              input_source: str = "hdfs",
              scan_rate: float = 250 * MB,
              intermediate_bytes: float = 64 * MB,
              n_reducers: Optional[int] = None,
              shuffle_store: Optional[str] = None,
              combiner: bool = False,
              key_skew: float = 0.0,
              n_keys: int = 1 << 16,
              pair_bytes: float = 200.0) -> JobSpec:
    """The simulated Grep job.

    ``scan_rate`` is the per-core regex-scan throughput — deliberately
    high: Grep's cost is reading, not computing.  The tiny intermediate
    volume (1–200 MB in the paper's runs) still exercises the shuffle
    machinery without ever making it the bottleneck.

    ``shuffle_store=None`` picks the configuration's natural device
    (RAMDisk shuffle dirs, or Lustre when the input comes from Lustre);
    pass ``"ramdisk"``/``"ssd"``/``"lustre"`` to pin it.

    ``combiner=True`` merges matched lines per node before storing; with
    uniform match keys (``key_skew=0``) and ~200-byte records the
    reduction is modest — Grep's shuffle is never the bottleneck, which
    is exactly why it belongs in the sweep as the null case.
    """
    ratio = min(1.0, intermediate_bytes / input_bytes) if input_bytes else 0.0
    if shuffle_store is None:
        shuffle_store = "ramdisk" if input_source != "lustre" else "lustre"
    return JobSpec(
        name="Grep",
        input_bytes=input_bytes,
        split_bytes=split_bytes,
        map_compute_rate=scan_rate,
        intermediate_ratio=ratio,
        input_source=input_source,
        shuffle_store=shuffle_store,
        fetch_mode="network" if shuffle_store != "lustre"
        else "lustre-local",
        n_reducers=n_reducers,
        # A text corpus is ingested from outside through gateway nodes, so
        # its HDFS blocks are hotspot-skewed; scan times vary per split
        # (match density, record lengths).
        hdfs_placement="skewed",
        compute_noise_sigma=0.30,
        combiner=combiner,
        key_skew=key_skew,
        n_keys=n_keys,
        pair_bytes=pair_bytes,
    )


def run_grep_local(lines: List[str], pattern: str,
                   ctx: Optional[LocalContext] = None) -> List[str]:
    """Really grep with the RDD API: filter lines matching ``pattern``."""
    ctx = ctx if ctx is not None else LocalContext(parallelism=4)
    regex = re.compile(pattern)
    return (ctx.parallelize(lines)
            .filter(lambda line: regex.search(line) is not None)
            .collect())
