"""kMeans — iterative clustering, the paper's other GroupBy consumer.

kMeans combines both paper benchmark archetypes: per-iteration heavy
vector math (like LR) plus a groupBy-style shuffle of cluster
assignments.  It exercises the memory-resident feature (§II-C): the
point set is cached across iterations while only the small centroid
table moves.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.core.jobspec import JobSpec
from repro.core.local import LocalContext

GB = 1024.0 ** 3
MB = 1024.0 ** 2

__all__ = ["kmeans_spec", "run_kmeans_local"]


def kmeans_spec(input_bytes: float,
                split_bytes: float = 64 * MB,
                input_source: str = "hdfs",
                iterations: int = 5,
                compute_rate: float = 60 * MB,
                n_reducers: Optional[int] = None,
                shuffle_ratio: float = 0.0,
                shuffle_store: Optional[str] = None,
                partition_stable: bool = False,
                delta_ratio: float = 0.1) -> JobSpec:
    """Simulated kMeans: iterative compute stages over cached input.

    By default the per-iteration shuffle (centroid partial sums) is tiny
    — a few kilobytes per task — so like LR the simulation models it as
    pure computation; the cached-input / locality behaviour is what
    matters.

    ``shuffle_ratio > 0`` instead models the full assignment shuffle
    (cluster id → point sums) every iteration: ``shuffle_ratio`` of the
    input moves per round.  ``partition_stable=True`` is the M3R mode —
    the reducer→node map from iteration 0 is pinned, so later rounds
    ship only the re-assignment delta (``delta_ratio`` of the volume:
    points that changed cluster, a small fraction once Lloyd's algorithm
    starts converging).
    """
    if shuffle_ratio < 0:
        raise ValueError(f"shuffle_ratio must be >= 0, got {shuffle_ratio}")
    if shuffle_ratio > 0 and shuffle_store is None:
        shuffle_store = "ramdisk"
    return JobSpec(
        name="kMeans",
        input_bytes=input_bytes,
        split_bytes=split_bytes,
        map_compute_rate=compute_rate,
        intermediate_ratio=shuffle_ratio,
        input_source=input_source,
        shuffle_store=shuffle_store if shuffle_ratio > 0 else None,
        iterations=iterations,
        cache_input=True,
        n_reducers=n_reducers,
        hdfs_placement="roundrobin",   # generated numeric data
        compute_noise_sigma=0.05,
        partition_stable=partition_stable,
        delta_ratio=delta_ratio if partition_stable else 1.0,
    )


def run_kmeans_local(points: List[np.ndarray], k: int,
                     iterations: int = 5, seed: int = 0,
                     ctx: Optional[LocalContext] = None
                     ) -> Tuple[np.ndarray, List[int]]:
    """Really run Lloyd's algorithm on the RDD API.

    Returns (centroids, assignment per point).  Each iteration is a
    map (assign to nearest centroid) + reduceByKey (sum per cluster) —
    the groupBy pattern the paper calls out — over a cached input RDD.
    """
    if not points:
        raise ValueError("need at least one point")
    if not 1 <= k <= len(points):
        raise ValueError(f"k={k} outside [1, {len(points)}]")
    if iterations < 1:
        raise ValueError("iterations must be >= 1")
    ctx = ctx if ctx is not None else LocalContext(parallelism=4)
    rng = np.random.default_rng(seed)
    centroids = np.array([points[i] for i in
                          rng.choice(len(points), size=k, replace=False)])
    data = ctx.parallelize(points).cache()

    for _ in range(iterations):
        def assign(p, centroids=centroids):
            dists = ((centroids - p) ** 2).sum(axis=1)
            return int(np.argmin(dists)), (p, 1)

        sums = (data.map(assign)
                .reduce_by_key(lambda a, b: (a[0] + b[0], a[1] + b[1]))
                .collect())
        for cluster_id, (total, count) in sums:
            centroids[cluster_id] = total / count

    assignment = [int(((centroids - p) ** 2).sum(axis=1).argmin())
                  for p in points]
    return centroids, assignment
