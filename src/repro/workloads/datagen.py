"""Synthetic data generators for the real (local-backend) benchmarks."""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

__all__ = ["generate_text_corpus", "generate_kv_pairs",
           "generate_labelled_points", "WORDS"]

#: A small vocabulary; "needle" appears only when injected.
WORDS = ("the quick brown fox jumps over lazy dog data node spark shuffle "
         "cluster lustre hyperion memory task stage rdd executor").split()


def generate_text_corpus(n_lines: int, words_per_line: int = 8,
                         needle: str = "NEEDLE", needle_rate: float = 0.01,
                         seed: int = 0) -> List[str]:
    """Lines of filler text with ``needle`` injected at ``needle_rate``."""
    if n_lines < 0:
        raise ValueError("n_lines must be non-negative")
    if not 0 <= needle_rate <= 1:
        raise ValueError("needle_rate must be in [0, 1]")
    rng = np.random.default_rng(seed)
    word_idx = rng.integers(0, len(WORDS), size=(n_lines, words_per_line))
    has_needle = rng.random(n_lines) < needle_rate
    lines = []
    for i in range(n_lines):
        toks = [WORDS[j] for j in word_idx[i]]
        if has_needle[i]:
            toks[int(rng.integers(0, words_per_line))] = needle
        lines.append(" ".join(toks))
    return lines


def generate_kv_pairs(n_pairs: int, n_keys: int = 1000, value_size: int = 1,
                      skew: float = 0.0, seed: int = 0
                      ) -> List[Tuple[int, int]]:
    """(key, value) pairs; ``skew`` > 0 gives a Zipf-ish key distribution
    (drawn as ``rng.zipf(1.0 + skew)`` folded onto ``n_keys`` keys — the
    same parameterisation the simulated combiner model derives its
    reduction curves from, see :mod:`repro.core.combine`)."""
    if n_pairs < 0:
        raise ValueError(f"n_pairs must be non-negative, got {n_pairs}")
    if n_keys < 1:
        raise ValueError(f"n_keys must be >= 1, got {n_keys}")
    if skew < 0:
        raise ValueError(
            f"skew must be >= 0, got {skew} (0 = uniform keys; larger "
            f"values sharpen the Zipf head)")
    rng = np.random.default_rng(seed)
    if skew > 0:
        keys = rng.zipf(1.0 + skew, size=n_pairs) % n_keys
    else:
        keys = rng.integers(0, n_keys, size=n_pairs)
    values = rng.integers(0, 1000, size=n_pairs)
    return list(zip(keys.tolist(), values.tolist()))


def generate_labelled_points(n_points: int, dims: int = 10, seed: int = 0
                             ) -> List[Tuple[np.ndarray, float]]:
    """Linearly separable labelled points for logistic regression.

    Labels are in {-1, +1}, decided by a hidden hyperplane plus noise, so
    a correct LR implementation must achieve high training accuracy.
    """
    if n_points < 0:
        raise ValueError("n_points must be non-negative")
    if dims < 1:
        raise ValueError("dims must be >= 1")
    rng = np.random.default_rng(seed)
    true_w = rng.normal(size=dims)
    x = rng.normal(size=(n_points, dims))
    margin = x @ true_w + rng.normal(scale=0.1, size=n_points)
    y = np.where(margin > 0, 1.0, -1.0)
    return [(x[i], float(y[i])) for i in range(n_points)]
