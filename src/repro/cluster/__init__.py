"""Compute-cluster substrate: node specs, runtime nodes, variability."""

from repro.cluster.spec import ClusterSpec, NodeSpec, hyperion
from repro.cluster.node import ComputeNode
from repro.cluster.cluster import Cluster
from repro.cluster.variability import (
    ConstantSpeed,
    LognormalSpeed,
    SpeedModel,
    UniformSpeed,
)

__all__ = [
    "Cluster",
    "ClusterSpec",
    "ComputeNode",
    "ConstantSpeed",
    "LognormalSpeed",
    "NodeSpec",
    "SpeedModel",
    "UniformSpeed",
    "hyperion",
]
