"""Node performance-variation models.

The paper (§V-B) observes that although HPC compute nodes are
homogeneous, *performance variations among compute nodes due to the skew
of workloads over time* make fast nodes absorb more tasks, which skews
the intermediate-data distribution ~2× between head and tail nodes
(Fig 12).  These models supply per-node speed factors; a factor of 1.2
means 20 % faster computation than nominal.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

__all__ = ["SpeedModel", "ConstantSpeed", "UniformSpeed", "LognormalSpeed"]


class SpeedModel:
    """Base class: produce one speed factor per node."""

    def sample(self, n_nodes: int, rng: np.random.Generator) -> np.ndarray:
        raise NotImplementedError


class ConstantSpeed(SpeedModel):
    """Perfectly homogeneous nodes (the idealised HPC assumption)."""

    def __init__(self, factor: float = 1.0) -> None:
        if factor <= 0:
            raise ValueError("speed factor must be positive")
        self.factor = factor

    def sample(self, n_nodes: int, rng: np.random.Generator) -> np.ndarray:
        return np.full(n_nodes, self.factor)


class UniformSpeed(SpeedModel):
    """Speed factors drawn uniformly from ``[low, high]``."""

    def __init__(self, low: float = 0.7, high: float = 1.4) -> None:
        if not 0 < low <= high:
            raise ValueError(f"need 0 < low <= high, got [{low}, {high}]")
        self.low = low
        self.high = high

    def sample(self, n_nodes: int, rng: np.random.Generator) -> np.ndarray:
        return rng.uniform(self.low, self.high, size=n_nodes)


class LognormalSpeed(SpeedModel):
    """Lognormal speed factors (median 1.0), clipped to ``[low, high]``.

    A lognormal captures the long-ish tail of background interference on
    shared HPC nodes; sigma ≈ 0.18 gives roughly the 2× spread the paper
    measured between the head and tail of the distribution.
    """

    def __init__(self, sigma: float = 0.18, low: float = 0.6,
                 high: float = 1.6) -> None:
        if sigma < 0:
            raise ValueError("sigma must be non-negative")
        if not 0 < low <= high:
            raise ValueError(f"need 0 < low <= high, got [{low}, {high}]")
        self.sigma = sigma
        self.low = low
        self.high = high

    def sample(self, n_nodes: int, rng: np.random.Generator) -> np.ndarray:
        factors = rng.lognormal(mean=0.0, sigma=self.sigma, size=n_nodes)
        return np.clip(factors, self.low, self.high)
