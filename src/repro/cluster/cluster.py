"""Cluster assembly: nodes + fabric + filesystems."""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional

from repro.sim.core import Simulator
from repro.sim.rng import RandomStreams
from repro.cluster.node import ComputeNode
from repro.cluster.spec import ClusterSpec
from repro.cluster.variability import ConstantSpeed, SpeedModel
from repro.net.fabric import Fabric
from repro.lustre.fs import LustreFileSystem
from repro.hdfs.fs import HDFSFileSystem
from repro.storage.device import MB

__all__ = ["Cluster"]


class Cluster:
    """A fully wired simulated HPC system.

    Builds the compute nodes (with per-node speed factors from the given
    :class:`SpeedModel`), the InfiniBand-like fabric, the shared Lustre
    file system (compute-centric storage) and an HDFS instance over the
    node-local RAMDisks (data-centric storage).
    """

    def __init__(self, spec: Optional[ClusterSpec] = None,
                 sim: Optional[Simulator] = None,
                 speed_model: Optional[SpeedModel] = None,
                 seed: int = 0,
                 hdfs_volume: str = "ramdisk",
                 hdfs_block_size: float = 128 * MB) -> None:
        self.spec = spec if spec is not None else ClusterSpec()
        self.sim = sim if sim is not None else Simulator()
        self.rng = RandomStreams(seed)
        speed_model = speed_model if speed_model is not None else ConstantSpeed()
        factors = speed_model.sample(self.spec.n_nodes, self.rng("node-speed"))
        self.nodes: List[ComputeNode] = [
            ComputeNode(self.sim, i, self.spec.node, speed_factor=float(f))
            for i, f in enumerate(factors)
        ]
        self.fabric = Fabric(self.sim, self.spec.n_nodes,
                             nic_bw=self.spec.nic_bw,
                             bisection_bw=self.spec.bisection_bw,
                             latency=self.spec.net_latency)
        self.lustre = LustreFileSystem(
            self.sim, self.spec.n_nodes,
            aggregate_bw=self.spec.lustre_aggregate_bw,
            n_oss=self.spec.lustre_n_oss,
            mds_ops_per_s=self.spec.lustre_mds_ops_per_s,
            open_latency=self.spec.lustre_open_latency,
            revoke_latency=self.spec.lustre_lock_revoke_latency,
            memory_bw=self.spec.node.memory_copy_bw)
        self.hdfs = HDFSFileSystem(self.sim, self.nodes, self.fabric,
                                   volume_name=hdfs_volume,
                                   block_size=hdfs_block_size)

    @property
    def n_nodes(self) -> int:
        return self.spec.n_nodes

    @property
    def total_cores(self) -> int:
        return self.spec.n_nodes * self.spec.node.cores

    def node(self, node_id: int) -> ComputeNode:
        return self.nodes[node_id]

    def __repr__(self) -> str:  # pragma: no cover
        return (f"<Cluster {self.n_nodes} nodes x "
                f"{self.spec.node.cores} cores>")
