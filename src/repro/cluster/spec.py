"""Declarative cluster and node specifications.

The :func:`hyperion` preset mirrors the paper's testbed (§III-A): 100
worker nodes (one further node hosts the Spark master / HDFS NameNode),
two 2.6 GHz 8-core Xeon E5-2670 per node (16 cores), 64 GB RAM of which
30 GB is given to Spark and 32 GB to a RAMDisk, one 128 GB SATA SSD
(387/507 MB/s write/read), InfiniBand QDR (32 Gb/s), and a 47 GB/s Lustre
file system.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional

GB = 1024.0 ** 3
MB = 1024.0 ** 2

__all__ = ["NodeSpec", "ClusterSpec", "hyperion", "GB", "MB"]


@dataclass(frozen=True)
class NodeSpec:
    """Hardware description of one compute node."""

    cores: int = 16
    ram_bytes: float = 64 * GB
    spark_mem_bytes: float = 30 * GB
    ramdisk_bytes: float = 32 * GB
    #: Space actually available for shuffle/HDFS data on the RAMDisk; the
    #: rest is consumed by inputs, HDFS overhead, and the OS.  The paper
    #: reports the HDFS/RAMDisk configuration topping out around 1.2 TB
    #: of intermediate data cluster-wide (12 GB/node average, with the
    #: imbalanced distribution of Fig 12 spiking hot nodes to ~2x that);
    #: experiments honour that documented limit explicitly
    #: (HDFS_RAMDISK_MAX_BYTES), while the per-node quota here only
    #: guards against outright impossible configurations.
    ramdisk_usable_bytes: float = 24 * GB
    ramdisk_read_bw: float = 4.0 * GB
    ramdisk_write_bw: float = 2.5 * GB
    ssd_bytes: float = 128 * GB
    ssd_read_bw: float = 507 * MB
    ssd_write_bw: float = 387 * MB
    ssd_clean_pool_bytes: float = 8 * GB
    memory_copy_bw: float = 3.0 * GB
    page_cache_bytes: float = 9 * GB
    #: Dirty-byte throttle: buffered writes beyond this back up to device
    #: speed.  ~7 GB/node puts the paper's SSD-vs-RAMDisk crossover
    #: between the 600 GB and 800 GB cluster-wide data points (Fig 8(a)).
    page_cache_dirty_bytes: float = 7 * GB

    def __post_init__(self) -> None:
        if self.cores < 1:
            raise ValueError(f"cores must be >= 1, got {self.cores}")
        if self.ram_bytes <= 0:
            raise ValueError("ram_bytes must be positive")
        if self.ramdisk_usable_bytes > self.ramdisk_bytes:
            raise ValueError(
                f"ramdisk_usable_bytes ({self.ramdisk_usable_bytes / GB:g} "
                f"GB) exceeds the RAMDisk itself ({self.ramdisk_bytes / GB:g}"
                f" GB): usable space is what remains after inputs and OS "
                f"overhead, it cannot outgrow the device")
        if self.ramdisk_bytes + self.spark_mem_bytes > self.ram_bytes:
            raise ValueError(
                f"ramdisk_bytes + spark_mem_bytes "
                f"({self.ramdisk_bytes / GB:g} + "
                f"{self.spark_mem_bytes / GB:g} GB) exceed ram_bytes "
                f"({self.ram_bytes / GB:g} GB): the RAMDisk and the Spark "
                f"heap are both carved out of the node's physical RAM")
        if self.page_cache_dirty_bytes > self.page_cache_bytes:
            raise ValueError(
                f"page_cache_dirty_bytes ({self.page_cache_dirty_bytes / GB:g}"
                f" GB) exceeds page_cache_bytes "
                f"({self.page_cache_bytes / GB:g} GB): the dirty throttle "
                f"is a limit on cached pages, it cannot exceed the cache")


@dataclass(frozen=True)
class ClusterSpec:
    """Description of the whole system."""

    n_nodes: int = 100
    node: NodeSpec = field(default_factory=NodeSpec)
    nic_bw: float = 4.0 * GB          # IB QDR, 32 Gb/s
    bisection_bw: Optional[float] = None
    net_latency: float = 20e-6
    lustre_aggregate_bw: float = 47 * GB
    lustre_n_oss: int = 16
    lustre_mds_ops_per_s: float = 30_000.0
    lustre_lock_revoke_latency: float = 5e-3
    lustre_open_latency: float = 0.5e-3

    def __post_init__(self) -> None:
        if self.n_nodes < 1:
            raise ValueError(f"n_nodes must be >= 1, got {self.n_nodes}")
        if self.nic_bw <= 0:
            raise ValueError("nic_bw must be positive")

    def scaled(self, n_nodes: int) -> "ClusterSpec":
        """A copy with a different node count; shared-resource capacities
        that scale with machine count (Lustre bandwidth, MDS throughput)
        are scaled proportionally so per-node contention is preserved."""
        if n_nodes < 1:
            raise ValueError(f"n_nodes must be >= 1, got {n_nodes}")
        ratio = n_nodes / self.n_nodes
        return replace(
            self,
            n_nodes=n_nodes,
            lustre_aggregate_bw=self.lustre_aggregate_bw * ratio,
            lustre_mds_ops_per_s=self.lustre_mds_ops_per_s * ratio,
            lustre_n_oss=max(1, round(self.lustre_n_oss * ratio)),
            bisection_bw=(self.bisection_bw * ratio
                          if self.bisection_bw is not None else None),
        )


def hyperion(n_nodes: int = 100) -> ClusterSpec:
    """The paper's LLNL Hyperion testbed, optionally scaled down.

    Scaling keeps *per-node* shares of the Lustre file system constant,
    so contention behaviour at 20 nodes matches the shape at 100.
    """
    base = ClusterSpec()
    if n_nodes == base.n_nodes:
        return base
    return base.scaled(n_nodes)
