"""Runtime model of one compute node."""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Optional

from repro.sim.resources import Resource
from repro.storage.ramdisk import RamDisk
from repro.storage.ssd import SSDDevice
from repro.storage.volume import LocalVolume

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.core import Simulator
    from repro.cluster.spec import NodeSpec

__all__ = ["ComputeNode"]


class ComputeNode:
    """A compute node: cores, local storage volumes, and a speed factor.

    * ``cores`` is a :class:`Resource` with one slot per hardware core —
      the executor's task slots.
    * ``volumes`` maps mount names (``"ramdisk"``, ``"ssd"``) to
      :class:`LocalVolume` s.  The RAMDisk is used raw (it *is* memory);
      the SSD sits behind a page cache (ext4 in the paper).
    * ``speed_factor`` scales computation throughput; it is how workload
      skew across an allegedly homogeneous cluster enters the model.
    """

    def __init__(self, sim: "Simulator", node_id: int, spec: "NodeSpec",
                 speed_factor: float = 1.0) -> None:
        if speed_factor <= 0:
            raise ValueError(f"speed_factor must be positive, got {speed_factor}")
        self.sim = sim
        self.node_id = node_id
        self.spec = spec
        self.speed_factor = float(speed_factor)
        self.cores = Resource(sim, capacity=spec.cores, name=f"n{node_id}.cores")

        ramdisk = RamDisk(sim, capacity_bytes=spec.ramdisk_usable_bytes,
                          read_bw=spec.ramdisk_read_bw,
                          write_bw=spec.ramdisk_write_bw,
                          name=f"n{node_id}.ramdisk")
        ssd = SSDDevice(sim, capacity_bytes=spec.ssd_bytes,
                        read_bw=spec.ssd_read_bw,
                        write_bw=spec.ssd_write_bw,
                        clean_pool_bytes=spec.ssd_clean_pool_bytes,
                        name=f"n{node_id}.ssd")
        self.ssd = ssd
        self.ramdisk = ramdisk
        self.volumes: Dict[str, LocalVolume] = {
            "ramdisk": LocalVolume(sim, ramdisk, use_page_cache=False,
                                   name=f"n{node_id}.ramdisk"),
            "ssd": LocalVolume(sim, ssd, use_page_cache=True,
                               memory_bw=spec.memory_copy_bw,
                               cache_bytes=spec.page_cache_bytes,
                               dirty_limit_bytes=spec.page_cache_dirty_bytes,
                               name=f"n{node_id}.ssd"),
        }

    def volume(self, name: str) -> LocalVolume:
        try:
            return self.volumes[name]
        except KeyError:
            raise KeyError(
                f"node {self.node_id} has no volume {name!r}; "
                f"available: {sorted(self.volumes)}") from None

    def compute(self, nominal_seconds: float):
        """Occupy this node for ``nominal_seconds`` of nominal CPU work,
        adjusted by the node's speed factor.  Returns a timeout event;
        the caller is responsible for holding a core slot."""
        if nominal_seconds < 0:
            raise ValueError(f"negative compute time {nominal_seconds}")
        return self.sim.timeout(nominal_seconds / self.speed_factor)

    def __repr__(self) -> str:  # pragma: no cover
        return f"<ComputeNode {self.node_id} x{self.speed_factor:.2f}>"
