"""HDFS substrate: co-located DataNodes over node-local volumes.

The data-centric configuration in the paper runs HDFS with each DataNode
backed by the node's 32 GB RAMDisk.  The model tracks block placement in
a NameNode map so the Spark scheduler can reason about task locality, and
serves reads either from the local volume or across the fabric.
"""

from repro.hdfs.namenode import BlockInfo, NameNode
from repro.hdfs.fs import HDFSFileSystem

__all__ = ["BlockInfo", "HDFSFileSystem", "NameNode"]
