"""HDFS facade: block reads with locality, served by DataNode volumes."""

from __future__ import annotations

from typing import TYPE_CHECKING, Hashable, List, Optional, Sequence

import numpy as np

from repro.sim.events import Event
from repro.hdfs.namenode import BlockInfo, NameNode
from repro.storage.device import MB

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.core import Simulator
    from repro.cluster.node import ComputeNode
    from repro.net.fabric import Fabric

__all__ = ["HDFSFileSystem"]


class HDFSFileSystem:
    """HDFS with DataNodes co-located on every compute node.

    Each DataNode stores its blocks on one of the node's local volumes
    (the paper uses the 32 GB RAMDisk).  Local reads go through the
    volume; remote reads stream across the fabric, rate-capped by the
    remote volume's read bandwidth (reads and transfers are pipelined).
    """

    def __init__(self, sim: "Simulator", nodes: Sequence["ComputeNode"],
                 fabric: "Fabric", volume_name: str = "ramdisk",
                 block_size: float = 128 * MB, replication: int = 1) -> None:
        if not nodes:
            raise ValueError("need at least one DataNode")
        self.sim = sim
        self.nodes = list(nodes)
        self.fabric = fabric
        self.volume_name = volume_name
        self.namenode = NameNode(len(nodes), block_size, replication)
        # Statistics.
        self.local_reads = 0
        self.remote_reads = 0
        self.bytes_local = 0.0
        self.bytes_remote = 0.0

    # -- ingest ------------------------------------------------------------------
    def ingest(self, file_id: Hashable, total_bytes: float,
               rng: Optional[np.random.Generator] = None,
               placement: str = "roundrobin",
               account_space: bool = False,
               block_size: Optional[float] = None) -> List[BlockInfo]:
        """Register a pre-loaded input file (no simulated write cost).

        ``account_space=True`` additionally debits DataNode volume
        capacity, enforcing the RAMDisk size limit the paper ran into.
        """
        blocks = self.namenode.create_file(file_id, total_bytes, rng=rng,
                                           placement=placement,
                                           block_size=block_size)
        if account_space:
            for b in blocks:
                for loc in b.locations:
                    self.nodes[loc].volume(self.volume_name).device.allocate(
                        b.size)
        return blocks

    def blocks_of(self, file_id: Hashable) -> List[BlockInfo]:
        return self.namenode.blocks_of(file_id)

    def delete(self, file_id: Hashable,
               account_space: bool = False) -> None:
        """Drop a file from the namespace (mirror of :meth:`ingest`).

        Pass ``account_space=True`` iff the file was ingested with it, to
        credit the DataNode volumes back.  A long-lived cluster must
        delete finished jobs' inputs or the NameNode file table grows
        without bound (and recycled file ids would collide).
        """
        blocks = self.namenode.delete_file(file_id)
        if account_space:
            for b in blocks:
                for loc in b.locations:
                    self.nodes[loc].volume(self.volume_name).device.release(
                        b.size)

    # -- reads -------------------------------------------------------------------
    def read_block(self, reader_node: int, block: BlockInfo) -> Event:
        """Read one block at ``reader_node``, local replica preferred."""
        if not 0 <= reader_node < len(self.nodes):
            raise ValueError(f"node {reader_node} outside cluster")
        if reader_node in block.locations:
            self.local_reads += 1
            self.bytes_local += block.size
            vol = self.nodes[reader_node].volume(self.volume_name)
            return vol.read(block.size, block.block_id)
        # Remote: stream from the first replica, capped by its disk rate.
        self.remote_reads += 1
        self.bytes_remote += block.size
        src = block.locations[0]
        disk_bw = self.nodes[src].volume(self.volume_name).device.peak_read_bw
        return self.fabric.transfer(src, reader_node, block.size,
                                    cap=disk_bw, tag=block.block_id)

    def is_local(self, node_id: int, block: BlockInfo) -> bool:
        return node_id in block.locations
