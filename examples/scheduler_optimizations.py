#!/usr/bin/env python
"""Scenario: quantify ELB and CAD on a shuffle-heavy production job.

Runs the paper's GroupBy benchmark at a size where the SSDs are deep in
their garbage-collection era, with realistic node-speed variation, and
compares four scheduler configurations: stock Spark, ELB, CAD, ELB+CAD.

Run:  python examples/scheduler_optimizations.py
"""

from repro import EngineOptions, hyperion, run_job
from repro.analysis import ascii_bar_chart, format_table, improvement
from repro.cluster.variability import LognormalSpeed
from repro.workloads import groupby_spec

GB = 1024.0 ** 3

NODES = 8
DATA = 96 * GB   # = 12 GB/node: past the SSD clean pool, GC active


def run_config(elb: bool, cad: bool):
    spec = groupby_spec(DATA, shuffle_store="ssd", n_reducers=NODES * 16)
    res = run_job(spec, cluster_spec=hyperion(NODES),
                  options=EngineOptions(elb=elb, cad=cad, seed=1),
                  speed_model=LognormalSpeed())
    return res


def main() -> None:
    configs = [("Spark", False, False), ("ELB", True, False),
               ("CAD", False, True), ("ELB+CAD", True, True)]
    results = {}
    rows = []
    for name, elb, cad in configs:
        res = run_config(elb, cad)
        results[name] = res
        rows.append([name, res.job_time, res.compute_time,
                     res.store_time, res.fetch_time,
                     improvement(results["Spark"].job_time, res.job_time)])
    print(format_table(
        ["config", "job_s", "compute_s", "store_s", "fetch_s", "gain_%"],
        rows, title=f"GroupBy {DATA / GB:.0f} GB on SSD, {NODES} nodes"))
    print()
    print(ascii_bar_chart([name for name, *_ in configs],
                          [results[n].job_time for n, *_ in configs],
                          title="job execution time (lower is better)"))
    print()
    spark, best = results["Spark"], results["ELB+CAD"]
    print(f"ELB+CAD vs Spark: "
          f"{improvement(spark.job_time, best.job_time):.1f}% faster "
          f"(paper: ELB ~26% under storage bottleneck, CAD ~19.8% average)")


if __name__ == "__main__":
    main()
