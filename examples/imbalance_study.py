#!/usr/bin/env python
"""Scenario: diagnose intermediate-data imbalance on your cluster.

Reproduces the paper's Fig 11/12 story as a diagnostic workflow: run a
shuffle-heavy job, pull the per-node task and intermediate-data
distributions out of the job metrics, print their CDFs, and show how the
head/tail gap translates into storing/fetching stragglers — then verify
ELB closes the gap.

Run:  python examples/imbalance_study.py
"""

import numpy as np

from repro import EngineOptions, LognormalSpeed, hyperion, run_job
from repro.analysis import ascii_bar_chart, cdf, percentile_spread
from repro.workloads import groupby_spec

GB = 1024.0 ** 3
MB = 1024.0 ** 2

NODES = 8


def run_once(elb: bool):
    spec = groupby_spec(64 * GB, split_bytes=128 * MB,
                        n_reducers=NODES * 16)
    return run_job(spec, cluster_spec=hyperion(NODES),
                   options=EngineOptions(elb=elb, seed=2),
                   speed_model=LognormalSpeed(sigma=0.18))


def describe(title: str, res) -> None:
    data_gb = res.node_intermediate / GB
    print(f"-- {title} --")
    print(ascii_bar_chart([f"node {i}" for i in range(NODES)],
                          list(data_gb),
                          title="intermediate data per node (GB)"))
    x, p = cdf(data_gb)
    marks = [0.25, 0.5, 0.75, 1.0]
    pts = ", ".join(f"p{int(m * 100)}={np.interp(m, p, x):.2f}GB"
                    for m in marks)
    print(f"CDF: {pts}")
    spread = percentile_spread(data_gb, low=10, high=90)
    print(f"tail/head spread: {spread:.2f}x  "
          f"(paper Fig 12: ~2x on stock Spark)")
    print(f"storing phase: {res.store_time:.2f}s, "
          f"fetching phase: {res.fetch_time:.2f}s\n")
    return spread


def main() -> None:
    stock = run_once(elb=False)
    balanced = run_once(elb=True)
    s1 = describe("stock Spark scheduler", stock)
    s2 = describe("with Enhanced Load Balancer", balanced)
    print(f"ELB narrowed the spread {s1:.2f}x -> {s2:.2f}x and changed "
          f"the shuffle phases by "
          f"{(stock.store_time + stock.fetch_time) - (balanced.store_time + balanced.fetch_time):+.2f}s")


if __name__ == "__main__":
    main()
