#!/usr/bin/env python
"""Quickstart: both faces of the library in two minutes.

1. Really execute an RDD program (word count) on the local backend.
2. Simulate the paper's GroupBy benchmark on a Hyperion-like cluster and
   print the phase dissection the paper's figures are built from.

Run:  python examples/quickstart.py
"""

from repro import EngineOptions, LocalContext, hyperion, run_job
from repro.core.dag import execution_plan
from repro.workloads import groupby_spec

GB = 1024.0 ** 3


def real_wordcount() -> None:
    print("== 1. Real execution: word count on the RDD API ==")
    ctx = LocalContext(parallelism=4)
    lines = [
        "big data meets high performance computing",
        "memory resident mapreduce on hpc systems",
        "data locality is not so critical on hpc systems",
    ]
    words = ctx.parallelize(lines).flat_map(str.split)
    counts = (words.map(lambda w: (w, 1))
              .reduce_by_key(lambda a, b: a + b))
    print("execution plan (note the shuffle boundary, paper Fig 4(a)):")
    print(execution_plan(counts).describe())
    top = sorted(counts.collect(), key=lambda kv: -kv[1])[:5]
    print("top words:", top)
    print()


def simulated_groupby() -> None:
    print("== 2. Simulation: GroupBy on a scaled Hyperion ==")
    spec = groupby_spec(data_bytes=40 * GB, shuffle_store="ramdisk")
    result = run_job(spec, cluster_spec=hyperion(n_nodes=8),
                     options=EngineOptions(seed=0))
    print(result.summary())
    print(f"intermediate data per node (GB): "
          f"{[round(b / GB, 2) for b in result.node_intermediate]}")


if __name__ == "__main__":
    real_wordcount()
    simulated_groupby()
