#!/usr/bin/env python
"""Scenario: should your HPC site run analytics on Lustre or add RAMDisk
DataNodes?  (The paper's §IV characterization as a what-if study.)

A site operator wants to know, per workload class, how much a
data-centric (HDFS over RAMDisk) configuration buys over simply reading
from the existing Lustre file system — the decision §VII says must
consider computation intensity.

Run:  python examples/dual_purpose_cluster.py
"""

from repro import EngineOptions, hyperion, run_job
from repro.analysis import format_table
from repro.cluster.variability import LognormalSpeed
from repro.workloads import grep_spec, logistic_regression_spec

GB = 1024.0 ** 3
MB = 1024.0 ** 2

NODES = 8
INPUT = 16 * GB   # per-run input volume at this scale


def job_time(spec, delay_scheduling):
    res = run_job(spec, cluster_spec=hyperion(NODES),
                  options=EngineOptions(delay_scheduling=delay_scheduling,
                                        seed=0),
                  speed_model=LognormalSpeed())
    return res.job_time


def main() -> None:
    rows = []
    for name, factory in (("Grep (scan-bound)", grep_spec),
                          ("LR (compute-bound)", logistic_regression_spec)):
        hdfs = job_time(factory(INPUT, split_bytes=64 * MB,
                                input_source="hdfs"),
                        delay_scheduling=True)
        lustre = job_time(factory(INPUT, split_bytes=64 * MB,
                                  input_source="lustre"),
                          delay_scheduling=False)
        verdict = ("keep Lustre" if lustre <= 1.15 * hdfs
                   else "worth adding DataNodes")
        rows.append([name, hdfs, lustre, lustre / hdfs, verdict])
    print(format_table(
        ["workload", "hdfs_s", "lustre_s", "lustre/hdfs", "recommendation"],
        rows,
        title="Input-storage decision per workload class (paper Fig 5)"))
    print()
    print("Paper's conclusion (§VII): computation intensity determines the")
    print("impact of the storage architecture — scan-bound jobs need the")
    print("data-centric path, compute-bound jobs do not.")


if __name__ == "__main__":
    main()
