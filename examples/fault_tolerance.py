#!/usr/bin/env python
"""Scenario: how does the job behave when executors misbehave?

Exercises the fault-tolerance machinery: per-attempt failure injection
with Spark-style re-execution, and LATE-style speculative execution on a
cluster with a pathologically slow node — the related-work baselines the
paper positions ELB against (§VIII: "none of them considers the
imbalanced intermediate data distribution issue").

Run:  python examples/fault_tolerance.py
"""

import numpy as np

from repro import EngineOptions, hyperion, run_job
from repro.analysis import format_table
from repro.cluster.variability import SpeedModel
from repro.workloads import grep_spec

GB = 1024.0 ** 3
MB = 1024.0 ** 2

NODES = 6


class OneCrawlingNode(SpeedModel):
    """Homogeneous cluster except one badly degraded node."""

    def sample(self, n_nodes, rng):
        factors = np.ones(n_nodes)
        factors[0] = 0.25   # e.g. a failing disk or a noisy co-tenant
        return factors


def run_config(label, **options):
    from repro.core.scheduler import StageFailed
    spec = grep_spec(24 * GB, split_bytes=64 * MB, input_source="hdfs")
    try:
        res = run_job(spec, cluster_spec=hyperion(NODES),
                      options=EngineOptions(seed=3, **options),
                      speed_model=OneCrawlingNode())
    except StageFailed as exc:
        # A task exhausted its 4 attempts: Spark aborts the job.  At a
        # 20% per-attempt failure rate this happens for roughly one task
        # in six hundred — exactly the cliff real clusters fall off.
        return [label, float("nan"), f"ABORTED: {exc}"]
    return [label, res.job_time, round(res.compute_time, 2)]


def main() -> None:
    rows = [
        run_config("baseline (healthy semantics)"),
        run_config("5% attempt failures", task_failure_rate=0.05),
        run_config("20% attempt failures", task_failure_rate=0.20),
        run_config("speculation off, slow node", ),
        run_config("speculation ON, slow node", speculation=True),
    ]
    print(format_table(["configuration", "job_s", "compute_s"], rows,
                       title=f"Grep on {NODES} nodes, node 0 at 0.25x speed"))
    base = rows[3][1]
    spec_on = rows[4][1]
    print()
    print(f"speculation recovers "
          f"{(base - spec_on) / base * 100:.1f}% of the job time lost to "
          f"the crawling node")
    print("(the paper's ELB attacks a different straggler cause — "
          "imbalanced intermediate data — see "
          "examples/scheduler_optimizations.py)")


if __name__ == "__main__":
    main()
