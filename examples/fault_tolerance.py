#!/usr/bin/env python
"""Scenario: how does the job behave when executors misbehave?

Exercises the fault-tolerance machinery: per-attempt failure injection
with Spark-style re-execution, and LATE-style speculative execution on a
cluster with a pathologically slow node — the related-work baselines the
paper positions ELB against (§VIII: "none of them considers the
imbalanced intermediate data distribution issue").

Run:  python examples/fault_tolerance.py
"""

import numpy as np

from repro import EngineOptions, hyperion, run_job
from repro.analysis import format_table
from repro.cluster.variability import SpeedModel
from repro.workloads import grep_spec

GB = 1024.0 ** 3
MB = 1024.0 ** 2

NODES = 6


class OneCrawlingNode(SpeedModel):
    """Homogeneous cluster except one badly degraded node."""

    def sample(self, n_nodes, rng):
        factors = np.ones(n_nodes)
        factors[0] = 0.25   # e.g. a failing disk or a noisy co-tenant
        return factors


def run_config(label, **options):
    from repro.core.scheduler import StageFailed
    spec = grep_spec(24 * GB, split_bytes=64 * MB, input_source="hdfs")
    try:
        res = run_job(spec, cluster_spec=hyperion(NODES),
                      options=EngineOptions(seed=3, **options),
                      speed_model=OneCrawlingNode())
    except StageFailed as exc:
        # A task exhausted its 4 attempts: Spark aborts the job.  At a
        # 20% per-attempt failure rate this happens for roughly one task
        # in six hundred — exactly the cliff real clusters fall off.
        return [label, float("nan"), f"ABORTED: {exc}"]
    return [label, res.job_time, round(res.compute_time, 2)]


def crash_demo() -> None:
    """Lose a whole node mid-shuffle-store and recover through lineage.

    Memory-resident map outputs die with their host; the engine
    recomputes the producing map tasks on a healthy node and re-stores
    their output before dependent reducers fetch (DESIGN.md §9).
    """
    from repro import FaultPlan
    from repro.workloads import groupby_spec

    spec = groupby_spec(8 * GB, shuffle_store="ssd")
    clean = run_job(spec, cluster_spec=hyperion(NODES),
                    options=EngineOptions(seed=11))
    # Aim the crash inside the storing phase; the node rejoins (empty)
    # twenty simulated seconds later.
    at = clean.phases["store"].start + 0.4 * clean.store_time
    crashed = run_job(spec, cluster_spec=hyperion(NODES),
                      options=EngineOptions(seed=11,
                                            fault_plan=FaultPlan.single_crash(
                                                node=1, at=at,
                                                restart_at=at + 20.0)))
    rec = crashed.recovery
    print(f"node 1 crashes at t={at:.2f}s (mid-store)")
    print(f"  fault-free job:  {clean.job_time:6.2f}s")
    print(f"  with crash:      {crashed.job_time:6.2f}s "
          f"(+{crashed.job_time - clean.job_time:.2f}s)")
    print(f"  recovered via lineage: {rec.tasks_recomputed} map tasks "
          f"recomputed ({rec.bytes_recomputed / GB:.2f} GiB), "
          f"{rec.recovery_time:.2f}s recovering")


def main() -> None:
    rows = [
        run_config("baseline (healthy semantics)"),
        run_config("5% attempt failures", task_failure_rate=0.05),
        run_config("20% attempt failures", task_failure_rate=0.20),
        run_config("speculation off, slow node", ),
        run_config("speculation ON, slow node", speculation=True),
    ]
    print(format_table(["configuration", "job_s", "compute_s"], rows,
                       title=f"Grep on {NODES} nodes, node 0 at 0.25x speed"))
    base = rows[3][1]
    spec_on = rows[4][1]
    print()
    print(f"speculation recovers "
          f"{(base - spec_on) / base * 100:.1f}% of the job time lost to "
          f"the crawling node")
    print("(the paper's ELB attacks a different straggler cause — "
          "imbalanced intermediate data — see "
          "examples/scheduler_optimizations.py)")
    print()
    crash_demo()


if __name__ == "__main__":
    main()
